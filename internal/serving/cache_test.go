package serving

import (
	"context"
	"testing"
	"time"

	"cardnet/internal/obs"
)

func testObsCounter(name string) uint64 { return obs.Default.Counter(name).Value() }

func TestCacheLRUEviction(t *testing.T) {
	c := newEstimateCache(4, 1) // one shard of 4 for a deterministic LRU order
	gen := c.Gen()
	for i := 0; i < 4; i++ {
		c.Put(cacheKey{uint64(i), 0}, []float64{float64(i)}, gen)
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := c.Get(cacheKey{0, 0}); !ok {
		t.Fatal("warm key missing")
	}
	c.Put(cacheKey{99, 0}, []float64{99}, gen)
	if c.Len() != 4 {
		t.Fatalf("len=%d after eviction, want 4", c.Len())
	}
	if _, ok := c.Get(cacheKey{1, 0}); ok {
		t.Fatal("LRU victim still cached")
	}
	for _, h := range []uint64{0, 2, 3, 99} {
		if _, ok := c.Get(cacheKey{h, 0}); !ok {
			t.Fatalf("key %d evicted, want key 1 only", h)
		}
	}
}

func TestCacheKeyIncludesTau(t *testing.T) {
	c := newEstimateCache(8, 2)
	gen := c.Gen()
	c.Put(cacheKey{7, 1}, []float64{1}, gen)
	c.Put(cacheKey{7, 2}, []float64{2}, gen)
	v1, ok1 := c.Get(cacheKey{7, 1})
	v2, ok2 := c.Get(cacheKey{7, 2})
	if !ok1 || !ok2 || v1[0] != 1 || v2[0] != 2 {
		t.Fatalf("(h,τ) keys collided: %v %v", v1, v2)
	}
	if _, ok := c.Get(cacheKey{7, 3}); ok {
		t.Fatal("unexpected hit on uncached τ")
	}
}

func TestCacheInvalidateDropsEntriesAndStalePuts(t *testing.T) {
	c := newEstimateCache(16, 4)
	gen := c.Gen()
	c.Put(cacheKey{1, 0}, []float64{1}, gen)
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("len=%d after invalidate", c.Len())
	}
	// A worker that snapshotted the old generation must not repopulate.
	c.Put(cacheKey{2, 0}, []float64{2}, gen)
	if c.Len() != 0 {
		t.Fatal("stale-generation Put was accepted")
	}
	c.Put(cacheKey{2, 0}, []float64{2}, c.Gen())
	if c.Len() != 1 {
		t.Fatal("fresh-generation Put was dropped")
	}
}

func TestHashXDistinguishesVectors(t *testing.T) {
	a := []float64{1, 0, 1, 0}
	b := []float64{0, 1, 0, 1}
	cc := []float64{1, 0, 1, 1}
	if hashX(a) == hashX(b) || hashX(a) == hashX(cc) || hashX(b) == hashX(cc) {
		t.Fatal("hash collision on tiny binary vectors")
	}
	if hashX(a) != hashX([]float64{1, 0, 1, 0}) {
		t.Fatal("hash not deterministic")
	}
}

// End-to-end cache behaviour: repeat traffic hits, swap invalidates, and
// post-swap answers come from the new model.
func TestEngineCacheHitAndInvalidateOnSwap(t *testing.T) {
	m1, m2 := testModel(10), testModel(20)
	reg := NewRegistry(m1)
	e := NewEngine(reg, Config{MaxBatch: 4, MaxWait: time.Millisecond, CacheEntries: 128})
	defer e.Close()

	x := binVec(5, m1.InDim)
	v1, err := e.Estimate(context.Background(), x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := m1.EstimateEncoded(x, 3); v1 != want {
		t.Fatalf("cold estimate %v != model %v", v1, want)
	}
	if e.CacheLen() == 0 {
		t.Fatal("nothing cached after a miss")
	}

	hitsBefore := testObsCounter("serving.cache.hits")
	v1b, err := e.Estimate(context.Background(), x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v1b != v1 {
		t.Fatalf("cached value %v != original %v", v1b, v1)
	}
	if testObsCounter("serving.cache.hits") == hitsBefore {
		t.Fatal("repeat estimate did not hit the cache")
	}

	if _, err := reg.Swap(m2); err != nil {
		t.Fatal(err)
	}
	if n := e.CacheLen(); n != 0 {
		t.Fatalf("cache holds %d entries after swap, want 0", n)
	}
	v2, err := e.Estimate(context.Background(), x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := m2.EstimateEncoded(x, 3); v2 != want {
		t.Fatalf("post-swap estimate %v != new model %v (stale cache?)", v2, want)
	}
	if v2 == v1 {
		t.Fatal("post-swap estimate identical to old model's — swap had no effect")
	}

	// All-τ curves are cached under their own key.
	all1, err := e.EstimateAll(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	all2, err := e.EstimateAll(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all1 {
		if all1[i] != all2[i] {
			t.Fatalf("cached all-τ curve diverged at %d", i)
		}
	}
}
