package serving

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/infer"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// Config tunes the engine. Zero values take the documented defaults.
type Config struct {
	// MaxBatch is the most requests coalesced into one forward pass
	// (default 32). 1 disables batching.
	MaxBatch int
	// MaxWait bounds how long a formed batch waits for more requests before
	// flushing (default 1ms).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded (default 256).
	QueueDepth int
	// Workers is the number of batch-running goroutines (default half the
	// CPUs, at least 1). Each worker forms and runs its own batches; the
	// model forward pass is goroutine-safe.
	Workers int
	// CacheEntries is the estimate-cache capacity; 0 uses the default 4096,
	// negative disables the cache.
	CacheEntries int
	// CacheShards is the cache shard count, rounded up to a power of two
	// (default 8).
	CacheShards int
	// CurveCheck, when set, receives every freshly computed τ-sweep estimate
	// curve (cache hits are not re-checked). The drift monitor wires its
	// monotonicity validator here. The callback must not retain the slice and
	// must be cheap: it runs on the batch worker's hot path.
	CurveCheck func(curve []float64)
	// Precision selects the inference tier: "f64" (default) is the exact
	// legacy forward; "f32" and "int8" serve through a compiled fused plan —
	// but only after the accuracy-delta gate passes. A failed gate falls back
	// to f64 (see Engine.Precision for the verdict).
	Precision infer.Precision
	// GateMaxDelta bounds the q-error p99 inflation a compiled tier may show
	// versus f64 before it is refused (0 = infer.DefaultGateMaxDelta).
	GateMaxDelta float64
	// GateSweep is the number of validation queries the gate evaluates
	// (0 = infer.DefaultGateSweep).
	GateSweep int
	// GateSeed seeds the gate's pseudo-random validation sweep.
	GateSeed int64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.Precision == "" {
		c.Precision = infer.PrecisionF64
	}
	return c
}

// request is one queued estimate; done is buffered so a worker can always
// complete a request whose caller has already given up on its deadline.
type request struct {
	ctx  context.Context
	x    []float64
	tau  int
	all  bool
	h    uint64 // hash of x, set when the cache is enabled
	done chan result

	tr  *obs.Trace // optional request trace (nil when untraced)
	enq time.Time  // when submit enqueued the request (for queue-wait)
}

type result struct {
	val float64
	all []float64
	err error
}

// Engine is the batched inference front-end over a model Registry. Create
// with NewEngine, serve with Estimate/EstimateAll, stop with Close (which
// drains queued requests before returning).
type Engine struct {
	cfg    Config
	reg    *Registry
	cache  *estimateCache
	plan   atomic.Pointer[planState] // compiled precision plan (nil plan = f64)
	shadow atomic.Pointer[ShadowTap] // optional dual-run tap (nil = off)

	q      chan *request
	mu     sync.RWMutex // guards closed against concurrent submits
	closed bool
	wg     sync.WaitGroup
}

// ShadowTap receives every freshly computed batch after its results have been
// delivered: xs holds the encoded inputs (one row per live request) and live
// the corresponding τ-sweep estimate curves served to clients. The autopilot
// wires its shadow evaluator here to dual-run a sampled fraction of traffic
// through a candidate model without affecting responses.
//
// The tap runs on the batch worker's hot path: it must return quickly (copy
// the rows it wants to keep and hand off to its own goroutine) and must not
// retain or mutate either matrix — the engine reuses nothing, but the slices
// alias response data that was already delivered.
type ShadowTap func(xs, live *tensor.Matrix)

// NewEngine starts cfg.Workers batch workers over the registry's model and
// hooks cache invalidation to registry swaps.
func NewEngine(reg *Registry, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		reg:   reg,
		cache: newEstimateCache(cfg.CacheEntries, cfg.CacheShards),
		q:     make(chan *request, cfg.QueueDepth),
	}
	if e.cache != nil {
		reg.OnSwap(e.cache.Invalidate)
	}
	// Lower the initial model to the configured precision tier, and re-lower
	// on every hot swap. Relowering runs inside Swap after the new model is
	// installed; until it publishes, batches see a version mismatch and serve
	// through the exact f64 path.
	e.relower()
	reg.OnSwap(e.relower)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Registry exposes the engine's model registry (for the reload endpoint).
func (e *Engine) Registry() *Registry { return e.reg }

// SetShadowTap installs (or, with nil, removes) the batch shadow tap. Safe to
// call concurrently with serving; the next batch sees the new tap.
func (e *Engine) SetShadowTap(tap ShadowTap) {
	if tap == nil {
		e.shadow.Store(nil)
		return
	}
	e.shadow.Store(&tap)
}

// CacheLen reports the number of cached estimates (0 when disabled).
func (e *Engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.Len()
}

// Estimate returns the cardinality estimate for an encoded query x at
// transformed threshold τ, batching the forward pass with concurrent
// requests. It fails fast with ErrOverloaded when the queue is full, ErrClosed
// after Close, ErrBadInput on shape/τ violations, and the context error when
// ctx expires first.
func (e *Engine) Estimate(ctx context.Context, x []float64, tau int) (float64, error) {
	return e.EstimateTraced(ctx, x, tau, nil)
}

// EstimateTraced is Estimate carrying an optional request trace: the engine
// marks the cache, queue.wait, batch.form, and forward stages on it and
// annotates batch size and flush reason. A nil trace costs nothing.
func (e *Engine) EstimateTraced(ctx context.Context, x []float64, tau int, tr *obs.Trace) (float64, error) {
	m, _ := e.reg.Current()
	if len(x) != m.InDim {
		return 0, fmt.Errorf("%w: x has %d features, model expects %d", ErrBadInput, len(x), m.InDim)
	}
	if tau < 0 || tau > m.Cfg.TauMax {
		return 0, fmt.Errorf("%w: tau %d outside [0, %d]", ErrBadInput, tau, m.Cfg.TauMax)
	}
	mRequests.Inc()
	r := &request{ctx: ctx, x: x, tau: tau, done: make(chan result, 1), tr: tr}
	if e.cache != nil {
		r.h = hashX(x)
		v, ok := e.cache.Get(cacheKey{r.h, tau})
		markCache(tr, ok)
		if ok {
			return v[0], nil
		}
	}
	res, err := e.dispatch(ctx, r)
	return res.val, err
}

// EstimateAll returns the full estimate curve (every τ in [0, TauMax]) for
// one encoded query, with the same batching, caching, and failure modes as
// Estimate. Callers must not mutate the returned slice.
func (e *Engine) EstimateAll(ctx context.Context, x []float64) ([]float64, error) {
	return e.EstimateAllTraced(ctx, x, nil)
}

// EstimateAllTraced is EstimateAll with an optional request trace.
func (e *Engine) EstimateAllTraced(ctx context.Context, x []float64, tr *obs.Trace) ([]float64, error) {
	m, _ := e.reg.Current()
	if len(x) != m.InDim {
		return nil, fmt.Errorf("%w: x has %d features, model expects %d", ErrBadInput, len(x), m.InDim)
	}
	mRequests.Inc()
	r := &request{ctx: ctx, x: x, all: true, done: make(chan result, 1), tr: tr}
	if e.cache != nil {
		r.h = hashX(x)
		v, ok := e.cache.Get(cacheKey{r.h, tauAll})
		markCache(tr, ok)
		if ok {
			return v, nil
		}
	}
	res, err := e.dispatch(ctx, r)
	return res.all, err
}

// markCache closes the cache-lookup stage on a traced request.
func markCache(tr *obs.Trace, hit bool) {
	if tr == nil {
		return
	}
	mStageCache.ObserveDuration(tr.Mark(StageCache))
	tr.Annotate("cache_hit", hit)
}

// dispatch submits r and waits for its result or the context deadline.
func (e *Engine) dispatch(ctx context.Context, r *request) (result, error) {
	if err := e.submit(r); err != nil {
		return result{}, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case res := <-r.done:
		return res, res.err
	case <-done:
		mExpired.Inc()
		return result{}, ctx.Err()
	}
}

// submit enqueues without blocking: admission control is the queue bound.
func (e *Engine) submit(r *request) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	r.enq = time.Now()
	select {
	case e.q <- r:
		mQueueDepth.Set(float64(len(e.q)))
		return nil
	default:
		mOverloaded.Inc()
		return ErrOverloaded
	}
}

// Close stops admission, drains every queued request through the workers,
// and waits for them to finish — the graceful-shutdown half of the server's
// SIGTERM handling.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.q)
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for r := range e.q {
		batchStart := time.Now()
		batch, reason := e.collect(r)
		e.run(batch, batchStart, reason)
	}
}

// collect forms a batch starting from first: it keeps pulling queued
// requests until the batch is full (size flush) or MaxWait has passed since
// the batch started forming (deadline flush, which bounds the latency a
// lone request pays for batching). The returned reason names which condition
// flushed the batch; every flush is counted under its reason.
func (e *Engine) collect(first *request) ([]*request, string) {
	batch := []*request{first}
	if e.cfg.MaxBatch <= 1 {
		mFlushSize.Inc()
		return batch, FlushSize
	}
	timer := time.NewTimer(e.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < e.cfg.MaxBatch {
		select {
		case r, ok := <-e.q:
			if !ok { // Close drained the queue: flush what we have
				mFlushShutdown.Inc()
				return batch, FlushShutdown
			}
			batch = append(batch, r)
		case <-timer.C:
			mFlushDeadline.Inc()
			return batch, FlushDeadline
		}
	}
	mFlushSize.Inc()
	return batch, FlushSize
}

// run executes one batch: expired requests are failed individually, the
// rest share a single stacked forward pass on the current model, and every
// result is delivered and cached. The model pointer and cache generation are
// snapshotted together so a concurrent swap can neither fail the batch nor
// let its results poison the post-swap cache.
//
// For traced requests the batching interval is split per request at
// batchStart: time from enqueue to batchStart is queue-wait (clamped into
// [enq, flush] — a request that joined mid-formation waited zero), and the
// remainder until the flush instant is batch-formation. Both stages plus the
// shared forward pass tile each request's wall time exactly, so the
// per-stage histograms sum to the end-to-end latency.
func (e *Engine) run(batch []*request, batchStart time.Time, reason string) {
	flush := time.Now()
	mQueueDepth.Set(float64(len(e.q)))
	var gen uint64
	if e.cache != nil {
		gen = e.cache.Gen() // before the model load: stale Puts must lose
	}
	m, ver := e.reg.Current()

	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if r.ctx != nil {
			select {
			case <-r.ctx.Done():
				mExpired.Inc()
				r.done <- result{err: r.ctx.Err()}
				continue
			default:
			}
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	mBatchSize.Observe(float64(len(live)))
	for _, r := range live {
		if r.tr == nil {
			continue
		}
		split := batchStart
		if split.Before(r.enq) {
			split = r.enq
		}
		if split.After(flush) {
			split = flush
		}
		mStageQueue.ObserveDuration(r.tr.MarkAt(StageQueueWait, split))
		mStageForm.ObserveDuration(r.tr.MarkAt(StageBatchForm, flush))
		r.tr.Annotate("batch_size", len(live))
		r.tr.Annotate("flush", reason)
	}

	xs := tensor.NewMatrix(len(live), m.InDim)
	for i, r := range live {
		copy(xs.Row(i), r.x)
	}
	// The compiled precision plan serves only when it was lowered from the
	// exact model version this batch snapshotted; during the swap→relower
	// window the versions differ and the batch takes the exact f64 path.
	var all *tensor.Matrix
	if ps := e.plan.Load(); ps != nil && ps.plan != nil && ps.version == ver {
		all = ps.plan.EstimateAllTausBatch(xs)
	} else {
		all = m.EstimateAllTausBatch(xs)
	}
	fwdEnd := time.Now()
	for _, r := range live {
		if r.tr != nil {
			mStageForward.ObserveDuration(r.tr.MarkAt(StageForward, fwdEnd))
		}
	}
	for i, r := range live {
		row := all.Row(i)
		if e.cfg.CurveCheck != nil {
			e.cfg.CurveCheck(row)
		}
		if r.all {
			vals := append([]float64(nil), row...)
			if e.cache != nil {
				e.cache.Put(cacheKey{r.h, tauAll}, vals, gen)
			}
			r.done <- result{all: vals}
			continue
		}
		v := row[r.tau]
		if e.cache != nil {
			e.cache.Put(cacheKey{r.h, r.tau}, []float64{v}, gen)
		}
		r.done <- result{val: v}
	}
	if e.cache != nil {
		mCacheSize.Set(float64(e.cache.Len()))
	}
	if tp := e.shadow.Load(); tp != nil {
		(*tp)(xs, all)
	}
}
