package serving

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cardnet/internal/core"
)

// ModelVersion pairs a model with its registry version (1 for the initial
// model, incremented on every successful Swap).
type ModelVersion struct {
	Model   *core.Model
	Version uint64
}

// Registry is a versioned store for the live serving model. Readers get the
// current model with one atomic load; Swap installs a retrained model
// atomically after validating shape compatibility, so in-flight batches
// simply finish on the pointer they already hold — no request ever fails
// because of a reload (the paper's Section 8 incremental-learning loop
// deployed as an operation).
type Registry struct {
	cur atomic.Pointer[ModelVersion]

	mu     sync.Mutex // serializes Swap and onSwap registration
	onSwap []func()
}

// NewRegistry starts a registry at version 1 with the given model.
func NewRegistry(m *core.Model) *Registry {
	if m == nil {
		panic("serving: nil initial model")
	}
	r := &Registry{}
	r.cur.Store(&ModelVersion{Model: m, Version: 1})
	mVersion.Set(1)
	return r
}

// Current returns the live model and its version.
func (r *Registry) Current() (*core.Model, uint64) {
	mv := r.cur.Load()
	return mv.Model, mv.Version
}

// OnSwap registers a callback invoked after every successful Swap (the
// engine uses it to invalidate the estimate cache).
func (r *Registry) OnSwap(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSwap = append(r.onSwap, f)
}

// Swap validates that m is shape-compatible with the live model — same
// input dimensionality and τ range, the contract clients encode against —
// and atomically installs it, returning the new version. The replaced model
// keeps serving any batch that already loaded it.
func (r *Registry) Swap(m *core.Model) (uint64, error) {
	if m == nil {
		return 0, fmt.Errorf("%w: nil model", ErrBadInput)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	if m.InDim != cur.Model.InDim {
		return 0, fmt.Errorf("%w: model in_dim %d, serving %d", ErrBadInput, m.InDim, cur.Model.InDim)
	}
	if m.Cfg.TauMax != cur.Model.Cfg.TauMax {
		return 0, fmt.Errorf("%w: model tau_max %d, serving %d", ErrBadInput, m.Cfg.TauMax, cur.Model.Cfg.TauMax)
	}
	next := &ModelVersion{Model: m, Version: cur.Version + 1}
	r.cur.Store(next)
	mSwaps.Inc()
	mVersion.Set(float64(next.Version))
	for _, f := range r.onSwap {
		f()
	}
	return next.Version, nil
}
