package serving

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cardnet/internal/core"
)

// testModel returns a small untrained model; serving behaviour does not
// depend on trained weights, and distinct seeds give distinct estimates,
// which is what the swap tests need.
func testModel(seed int64) *core.Model {
	cfg := core.DefaultConfig(8)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 4
	cfg.PhiHidden = []int{16, 16}
	cfg.ZDim = 8
	cfg.Accel = true
	cfg.Seed = seed
	return core.New(cfg, 24)
}

func binVec(seed int64, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, dim)
	for i := range x {
		x[i] = float64(rng.Intn(2))
	}
	return x
}

func TestEngineMatchesDirectModel(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 4, MaxWait: time.Millisecond})
	defer e.Close()

	for i := 0; i < 10; i++ {
		x := binVec(int64(i), m.InDim)
		tau := i % (m.Cfg.TauMax + 1)
		got, err := e.Estimate(context.Background(), x, tau)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.EstimateEncoded(x, tau); got != want {
			t.Fatalf("query %d: engine %v != model %v", i, got, want)
		}
		all, err := e.EstimateAll(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		want := m.EstimateAllTaus(x)
		for j := range want {
			if all[j] != want[j] {
				t.Fatalf("query %d τ=%d: engine %v != model %v", i, j, all[j], want[j])
			}
		}
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{})
	defer e.Close()

	if _, err := e.Estimate(context.Background(), make([]float64, m.InDim-1), 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short x: err=%v", err)
	}
	if _, err := e.Estimate(context.Background(), make([]float64, m.InDim), -1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative tau: err=%v", err)
	}
	if _, err := e.Estimate(context.Background(), make([]float64, m.InDim), m.Cfg.TauMax+1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("huge tau: err=%v", err)
	}
	if _, err := e.EstimateAll(context.Background(), nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil x: err=%v", err)
	}
}

// Size-triggered flush: with a far-away deadline, a full batch must flush on
// its own — if the size trigger were broken, these requests would sit for
// the whole MaxWait and the test would time out.
func TestBatcherFlushesOnSize(t *testing.T) {
	m := testModel(1)
	const batch = 4
	e := NewEngine(NewRegistry(m), Config{
		MaxBatch: batch, MaxWait: time.Hour, Workers: 1, CacheEntries: -1,
	})
	defer e.Close()

	var wg sync.WaitGroup
	errs := make(chan error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), 1)
			errs <- err
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size flush never fired: batch stuck behind the 1h deadline")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Deadline-triggered flush: a lone request in a large-batch engine must
// complete in roughly MaxWait, not wait for peers that never come.
func TestBatcherFlushesOnDeadline(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{
		MaxBatch: 1024, MaxWait: 5 * time.Millisecond, Workers: 1, CacheEntries: -1,
	})
	defer e.Close()

	start := time.Now()
	if _, err := e.Estimate(context.Background(), binVec(1, m.InDim), 2); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("lone request took %v", waited)
	}
}

// Concurrent traffic through one worker must coalesce into multi-request
// batches (the whole point of the subsystem).
func TestBatcherCoalesces(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{
		MaxBatch: 8, MaxWait: time.Second, Workers: 1, CacheEntries: -1,
	})
	defer e.Close()

	callsBefore, rowsBefore := coreBatchCounters()
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), i%3); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	calls, rows := coreBatchCounters()
	if gotRows := rows - rowsBefore; gotRows != n {
		t.Fatalf("batched rows: %d, want %d", gotRows, n)
	}
	if gotCalls := calls - callsBefore; gotCalls >= n {
		t.Fatalf("no coalescing: %d forward passes for %d requests", gotCalls, n)
	}
}

func coreBatchCounters() (calls, rows uint64) {
	return testObsCounter("core.estimate_batch.calls"), testObsCounter("core.estimate_batch.rows")
}

// Admission control: a full queue rejects instead of blocking. Built without
// workers so the rejection is deterministic.
func TestSubmitOverloadedWhenQueueFull(t *testing.T) {
	m := testModel(1)
	e := &Engine{cfg: Config{QueueDepth: 1}.withDefaults(), reg: NewRegistry(m), q: make(chan *request, 1)}
	r := func() *request { return &request{x: binVec(1, m.InDim), done: make(chan result, 1)} }
	if err := e.submit(r()); err != nil {
		t.Fatal(err)
	}
	if err := e.submit(r()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second submit: err=%v, want ErrOverloaded", err)
	}
	if _, err := e.Estimate(context.Background(), binVec(1, m.InDim), 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Estimate on full queue: err=%v, want ErrOverloaded", err)
	}
}

// Saturation smoke test with real workers: every request either succeeds or
// is rejected with ErrOverloaded; nothing hangs or fails another way.
func TestEngineSaturationDegradesGracefully(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{
		MaxBatch: 2, MaxWait: 100 * time.Microsecond, QueueDepth: 2, Workers: 1, CacheEntries: -1,
	})
	defer e.Close()

	var ok, overloaded, other atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := e.Estimate(context.Background(), binVec(int64(g*100+i), m.InDim), i%(m.Cfg.TauMax+1))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				default:
					other.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected failures under saturation: %d", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under saturation")
	}
	t.Logf("saturation: ok=%d overloaded=%d", ok.Load(), overloaded.Load())
}

// Per-request deadlines: an already-expired context is reported as such and
// never occupies forward-pass capacity.
func TestEngineHonorsContextDeadline(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{CacheEntries: -1})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Estimate(ctx, binVec(1, m.InDim), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err=%v", err)
	}
}

func TestEngineClosedRejects(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{})
	e.Close()
	e.Close() // idempotent
	if _, err := e.Estimate(context.Background(), binVec(1, m.InDim), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine: err=%v", err)
	}
}

// Hot swap under fire: hammer the engine from many goroutines while the
// registry swaps retrained (re-seeded) models; zero requests may fail, and
// answers must always come from one of the installed models.
func TestSwapUnderLoadZeroFailures(t *testing.T) {
	models := []*core.Model{testModel(1), testModel(2), testModel(3)}
	reg := NewRegistry(models[0])
	e := NewEngine(reg, Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueDepth: 4096})
	defer e.Close()

	dim := models[0].InDim
	const nx = 16
	xs := make([][]float64, nx)
	want := make([]map[float64]bool, nx) // valid answers per query: any installed model
	for i := range xs {
		xs[i] = binVec(int64(i), dim)
		want[i] = map[float64]bool{}
		for _, m := range models {
			want[i][m.EstimateEncoded(xs[i], i%(models[0].Cfg.TauMax+1))] = true
		}
	}

	stop := make(chan struct{})
	var failures, wrong, served atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := (g + i) % nx
				v, err := e.Estimate(context.Background(), xs[q], q%(models[0].Cfg.TauMax+1))
				if errors.Is(err, ErrOverloaded) {
					continue // backpressure is not a failure
				}
				if err != nil {
					failures.Add(1)
					return
				}
				served.Add(1)
				if !want[q][v] {
					wrong.Add(1)
					return
				}
			}
		}(g)
	}

	for swap := 1; swap <= 6; swap++ {
		time.Sleep(5 * time.Millisecond)
		if _, err := reg.Swap(models[swap%len(models)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed during swaps", failures.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d answers matched no installed model", wrong.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served during the swap storm")
	}
	if _, v := reg.Current(); v != 7 {
		t.Fatalf("registry version %d, want 7", v)
	}
}
