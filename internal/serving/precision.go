package serving

import (
	"cardnet/internal/infer"
)

// planState is one atomically-published compiled-plan snapshot: the plan (nil
// when the f64 legacy path serves), the registry version it was lowered from,
// and the gate verdict that authorized (or refused) it. Batches use the plan
// only when its version matches the model they snapshotted, so the window
// between a swap and its re-lowering serves through the exact f64 path rather
// than a stale plan.
type planState struct {
	plan    *infer.Plan
	version uint64
	gate    infer.GateResult
}

// precisionBits maps a tier to the gauge encoding of
// "serving.precision.active_bits": the weight width actually serving
// (64, 32, or 8).
func precisionBits(p infer.Precision) float64 {
	switch p {
	case infer.PrecisionF32:
		return 32
	case infer.PrecisionInt8:
		return 8
	default:
		return 64
	}
}

// relower compiles the current registry model to the configured precision
// tier and publishes the result. It runs at engine construction and after
// every registry swap (never on the request path); a gate failure publishes a
// nil plan — the f64 fallback — and bumps the gate-failure counter.
func (e *Engine) relower() {
	m, ver := e.reg.Current()
	plan, gate, err := infer.Compile(m, e.cfg.Precision, infer.GateConfig{
		MaxQErrP99Delta: e.cfg.GateMaxDelta,
		Sweep:           e.cfg.GateSweep,
		Seed:            e.cfg.GateSeed,
	})
	if err != nil {
		// Unknown tier: withDefaults normalizes the config, so this is
		// defensive. Serve exact f64 and say why.
		gate.Reason = err.Error()
		plan = nil
	}
	if e.cfg.Precision != infer.PrecisionF64 && !gate.Pass {
		mGateFailures.Inc()
	}
	e.plan.Store(&planState{plan: plan, version: ver, gate: gate})
	mPrecisionActive.Set(precisionBits(gate.Tier))
}

// Precision reports the gate verdict of the currently published plan: which
// tier was requested, which tier is actually serving, and the measured
// q-error delta. Exposed through /healthz.
func (e *Engine) Precision() infer.GateResult {
	if ps := e.plan.Load(); ps != nil {
		return ps.gate
	}
	return infer.GateResult{
		Requested: e.cfg.Precision,
		Tier:      infer.PrecisionF64,
		Pass:      true,
		Reason:    "engine not yet lowered",
	}
}
