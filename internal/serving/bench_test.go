package serving

import (
	"context"
	"strconv"
	"testing"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/tensor"
)

// benchModel mirrors the production architecture at production size; serving
// throughput does not depend on trained weights.
func benchModel() *core.Model {
	cfg := core.DefaultConfig(16)
	cfg.Accel = true
	return core.New(cfg, 48)
}

// BenchmarkEstimatePerRequest is the baseline the batcher must beat: one
// forward pass per estimate.
func BenchmarkEstimatePerRequest(b *testing.B) {
	m := benchModel()
	x := binVec(1, m.InDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateEncoded(x, i%(m.Cfg.TauMax+1))
	}
}

// BenchmarkEstimateBatched measures the coalesced forward pass at the batch
// sizes the engine actually forms; b.N counts estimates, not batches, so the
// numbers are directly comparable to BenchmarkEstimatePerRequest.
func BenchmarkEstimateBatched(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			m := benchModel()
			xs := tensor.NewMatrix(size, m.InDim)
			taus := make([]int, size)
			for r := 0; r < size; r++ {
				copy(xs.Row(r), binVec(int64(r), m.InDim))
				taus[r] = r % (m.Cfg.TauMax + 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				m.EstimateEncodedBatch(xs, taus)
			}
		})
	}
}

// BenchmarkEngineEstimate drives the full path — queue, batcher, cache — with
// parallel clients over a repeating query set.
func BenchmarkEngineEstimate(b *testing.B) {
	for _, tc := range []struct {
		name    string
		entries int
	}{{"cache_off", -1}, {"cache_on", 4096}} {
		b.Run(tc.name, func(b *testing.B) {
			m := benchModel()
			e := NewEngine(NewRegistry(m), Config{
				MaxBatch:     32,
				MaxWait:      200 * time.Microsecond,
				QueueDepth:   4096,
				CacheEntries: tc.entries,
			})
			defer e.Close()
			const nq = 64
			xs := make([][]float64, nq)
			for i := range xs {
				xs[i] = binVec(int64(i), m.InDim)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := i % nq
					if _, err := e.Estimate(context.Background(), xs[q], q%(m.Cfg.TauMax+1)); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}
