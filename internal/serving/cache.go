package serving

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
)

// tauAll is the cache-key τ of an all-τ entry (a full estimate curve).
// Request validation rejects negative τ, so it cannot collide with a real
// threshold.
const tauAll = -1

// cacheKey identifies one cached estimate: the 64-bit hash of the encoded
// query vector plus the transformed threshold (or tauAll).
type cacheKey struct {
	h   uint64
	tau int
}

// cacheEntry is an LRU node payload: len(vals) == 1 for a single-τ estimate,
// TauMax+1 for an all-τ curve.
type cacheEntry struct {
	key  cacheKey
	vals []float64
}

// estimateCache is a sharded LRU over estimates. Shards are selected by key
// hash so concurrent lookups rarely contend on one mutex. A generation
// counter implements invalidation-on-swap: Invalidate bumps the generation
// and clears every shard, and Put drops values whose generation snapshot is
// stale, so a batch computed against a replaced model can never re-populate
// the cache afterwards.
type estimateCache struct {
	shards []cacheShard
	mask   uint64
	gen    atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[cacheKey]*list.Element
}

// newEstimateCache builds a cache of ~entries capacity split over shards
// (rounded up to a power of two).
func newEstimateCache(entries, shards int) *estimateCache {
	if entries <= 0 {
		return nil
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (entries + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &estimateCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, ll: list.New(), byKey: make(map[cacheKey]*list.Element)}
	}
	return c
}

func (c *estimateCache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.h&c.mask]
}

// Gen returns the current generation. Snapshot it before running a forward
// pass and hand it to Put.
func (c *estimateCache) Gen() uint64 { return c.gen.Load() }

// Get returns the cached values for k, refreshing its LRU position.
func (c *estimateCache) Get(k cacheKey) ([]float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	var vals []float64
	el, ok := s.byKey[k]
	if ok {
		s.ll.MoveToFront(el)
		vals = el.Value.(*cacheEntry).vals // read under the lock: Put may replace it
	}
	s.mu.Unlock()
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	mCacheHits.Inc()
	return vals, true
}

// Put inserts vals under k, evicting the shard's least-recently-used entry
// when full. The write is dropped if gen is stale (the cache was invalidated
// after the caller snapshotted it).
func (c *estimateCache) Put(k cacheKey, vals []float64, gen uint64) {
	if c.gen.Load() != gen {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the shard lock: Invalidate holds every shard lock while
	// clearing, so a stale writer cannot slip in between the clear and the
	// generation bump.
	if c.gen.Load() != gen {
		return
	}
	if el, ok := s.byKey[k]; ok {
		el.Value.(*cacheEntry).vals = vals
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.byKey, oldest.Value.(*cacheEntry).key)
			mCacheEvicts.Inc()
		}
	}
	s.byKey[k] = s.ll.PushFront(&cacheEntry{key: k, vals: vals})
}

// Invalidate clears every shard and bumps the generation, racing correctly
// with concurrent Puts holding an older generation.
func (c *estimateCache) Invalidate() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.byKey = make(map[cacheKey]*list.Element)
	}
	c.gen.Add(1)
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}

// Len returns the total number of cached entries (test/ops helper).
func (c *estimateCache) Len() int {
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// hashX hashes an encoded query vector with FNV-1a over the IEEE-754 bytes
// of each component, finished with a splitmix64 avalanche so that low-entropy
// binary vectors still spread across shards.
func hashX(x []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range x {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= prime64
			b >>= 8
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
