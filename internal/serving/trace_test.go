package serving

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"cardnet/internal/obs"
)

// A traced miss must walk every engine stage in pipeline order, tile the
// trace's total exactly, and carry the batch annotations.
func TestEstimateTracedStages(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 4, MaxWait: time.Millisecond})
	defer e.Close()

	tr := obs.NewTrace()
	if _, err := e.EstimateTraced(context.Background(), binVec(1, m.InDim), 2, tr); err != nil {
		t.Fatal(err)
	}
	stages := tr.Stages()
	wantOrder := []string{StageCache, StageQueueWait, StageBatchForm, StageForward}
	if len(stages) != len(wantOrder) {
		t.Fatalf("stages %v, want %v", stages, wantOrder)
	}
	var sum float64
	for i, s := range stages {
		if s.Name != wantOrder[i] {
			t.Fatalf("stage %d = %q, want %q (all: %v)", i, s.Name, wantOrder[i], stages)
		}
		if s.Us < 0 {
			t.Fatalf("negative stage duration: %+v", s)
		}
		sum += s.Us
	}
	// Marks tile the interval by construction: stage microseconds sum to the
	// traced total exactly (modulo float rounding).
	if total := float64(tr.Total().Nanoseconds()) / 1e3; math.Abs(sum-total) > 1e-6*total+1e-9 {
		t.Fatalf("stage sum %.3fus != total %.3fus", sum, total)
	}

	f := tr.Fields()
	if f["cache_hit"] != false {
		t.Fatalf("cache_hit = %v, want false", f["cache_hit"])
	}
	if bs, ok := f["batch_size"].(int); !ok || bs < 1 {
		t.Fatalf("batch_size = %v", f["batch_size"])
	}
	switch f["flush"] {
	case FlushSize, FlushDeadline, FlushShutdown:
	default:
		t.Fatalf("flush = %v", f["flush"])
	}
}

// A traced cache hit short-circuits after the cache stage and is annotated
// as a hit.
func TestEstimateTracedCacheHit(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 1})
	defer e.Close()

	x := binVec(7, m.InDim)
	if _, err := e.Estimate(context.Background(), x, 3); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	if _, err := e.EstimateTraced(context.Background(), x, 3, tr); err != nil {
		t.Fatal(err)
	}
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Name != StageCache {
		t.Fatalf("cache-hit stages = %v, want just %q", stages, StageCache)
	}
	if tr.Fields()["cache_hit"] != true {
		t.Fatal("cache hit not annotated")
	}
}

// Traced requests feed the per-stage histograms; the stage sums tile the
// interval, so they add up to the engine-observed wall time per request.
func TestTracedRequestsFeedStageHistograms(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 2, MaxWait: 100 * time.Microsecond, CacheEntries: -1})
	defer e.Close()

	names := []string{
		StageHistName(StageQueueWait),
		StageHistName(StageBatchForm),
		StageHistName(StageForward),
	}
	before := make(map[string]uint64, len(names))
	for _, n := range names {
		before[n] = obs.Default.Histogram(n, obs.TimeBuckets()).Count()
	}

	const reqs = 6
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := obs.NewTrace()
			if _, err := e.EstimateAllTraced(context.Background(), binVec(int64(i), m.InDim), tr); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	for _, n := range names {
		got := obs.Default.Histogram(n, obs.TimeBuckets()).Count() - before[n]
		if got != reqs {
			t.Fatalf("%s observed %d stage durations, want %d", n, got, reqs)
		}
	}
}

// Untraced requests must not touch the stage histograms (tracing is pay-as-
// you-go) and still succeed.
func TestUntracedRequestsSkipStageHistograms(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 1, CacheEntries: -1})
	defer e.Close()

	h := obs.Default.Histogram(StageHistName(StageForward), obs.TimeBuckets())
	before := h.Count()
	for i := 0; i < 4; i++ {
		if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Count(); got != before {
		t.Fatalf("forward histogram grew by %d for untraced traffic", got-before)
	}
}

// Every flush is attributed to exactly one reason counter.
func TestFlushReasonCounters(t *testing.T) {
	m := testModel(1)

	sizeBefore := testObsCounter("serving.batch.flush_size")
	deadlineBefore := testObsCounter("serving.batch.flush_deadline")

	// MaxBatch 1: every request is its own size-flushed batch.
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 1, CacheEntries: -1})
	for i := 0; i < 3; i++ {
		if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), 0); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if got := testObsCounter("serving.batch.flush_size") - sizeBefore; got != 3 {
		t.Fatalf("size flushes = %d, want 3", got)
	}

	// A lone request in a huge batch flushes on the deadline.
	e = NewEngine(NewRegistry(m), Config{MaxBatch: 1024, MaxWait: time.Millisecond, Workers: 1, CacheEntries: -1})
	if _, err := e.Estimate(context.Background(), binVec(9, m.InDim), 0); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if got := testObsCounter("serving.batch.flush_deadline") - deadlineBefore; got == 0 {
		t.Fatal("deadline flush not counted")
	}
}

// Close drains queued requests through shutdown flushes, and they are
// counted as such.
func TestShutdownFlushCounted(t *testing.T) {
	m := testModel(1)
	before := testObsCounter("serving.batch.flush_shutdown")

	// No standing workers: requests pile up in the queue, then Close's
	// drain (run by a worker started here) flushes them with reason
	// "shutdown" because the channel closes before MaxBatch is reached.
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 64, MaxWait: time.Hour, Workers: 1, QueueDepth: 16})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the worker start forming the batch
	e.Close()
	wg.Wait()

	if got := testObsCounter("serving.batch.flush_shutdown"); got == before {
		t.Fatal("shutdown flush not counted")
	}
}

// CurveCheck sees every freshly computed τ-sweep row (and the untrained
// model's curves are monotone by construction, Lemma 2).
func TestCurveCheckInvoked(t *testing.T) {
	m := testModel(1)
	var mu sync.Mutex
	var rows int
	var badLen bool
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 4, MaxWait: time.Millisecond, CacheEntries: -1,
		CurveCheck: func(curve []float64) {
			mu.Lock()
			rows++
			if len(curve) != m.Cfg.TauMax+1 {
				badLen = true
			}
			mu.Unlock()
		}})
	defer e.Close()

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), i%(m.Cfg.TauMax+1)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if rows != reqs {
		t.Fatalf("CurveCheck saw %d rows, want %d", rows, reqs)
	}
	if badLen {
		t.Fatalf("CurveCheck saw a curve without TauMax+1=%d points", m.Cfg.TauMax+1)
	}
}

// The cache-size gauge tracks Puts.
func TestCacheSizeGauge(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{MaxBatch: 1, CacheEntries: 64})
	defer e.Close()

	for i := 0; i < 5; i++ {
		if _, err := e.Estimate(context.Background(), binVec(int64(i), m.InDim), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := obs.Default.Gauge("serving.cache.size").Value(); got < 1 {
		t.Fatalf("cache.size gauge = %v after 5 misses", got)
	}
}
