package dataset

import "cardnet/internal/dist"

// Kind enumerates the four distance functions of the evaluation.
type Kind int

// The four distance-function families of Table 2.
const (
	HM Kind = iota // Hamming distance over binary vectors
	ED             // edit distance over strings
	JC             // Jaccard distance over sets
	EU             // Euclidean distance over real vectors
)

// String names the kind like the paper's dataset prefixes.
func (k Kind) String() string {
	switch k {
	case HM:
		return "HM"
	case ED:
		return "ED"
	case JC:
		return "JC"
	case EU:
		return "EU"
	default:
		return "??"
	}
}

// Spec describes one benchmark dataset in the style of paper Table 2. N and
// the structural parameters are scaled down from the paper so experiments
// run on CPU in seconds; the generators preserve the clustered, long-tailed
// shape the paper's datasets exhibit (Figure 1).
type Spec struct {
	Name     string
	Kind     Kind
	N        int
	Dim      int     // bits (HM), vector dim (EU); 0 otherwise
	ThetaMax float64 // default θmax, mirroring Table 2
	Seed     int64

	// Generator knobs.
	Clusters  int
	Flip      float64 // HM: bit-flip rate
	Syllables int     // ED: base string length in syllables
	MutRate   float64 // ED: mutation rate
	Universe  int     // JC: token universe
	CoreLen   int     // JC: cluster core size
	Keep      float64 // JC: core keep probability
	TailLen   int     // JC: random tail budget
	Std       float64 // EU: within-cluster std
}

// Defaults returns the eight benchmark datasets mirroring paper Table 2
// (boldface defaults first within each distance). Names keep the paper's so
// experiment output lines up with the original tables.
func Defaults() []Spec {
	return []Spec{
		{Name: "HM-ImageNet", Kind: HM, N: 4000, Dim: 64, ThetaMax: 20, Seed: 101, Clusters: 8, Flip: 0.08},
		{Name: "HM-PubChem", Kind: HM, N: 4000, Dim: 128, ThetaMax: 30, Seed: 102, Clusters: 8, Flip: 0.06},
		{Name: "ED-AMiner", Kind: ED, N: 4000, ThetaMax: 10, Seed: 103, Clusters: 350, Syllables: 5, MutRate: 0.2},
		{Name: "ED-DBLP", Kind: ED, N: 3000, ThetaMax: 20, Seed: 104, Clusters: 250, Syllables: 14, MutRate: 0.1},
		{Name: "JC-BMS", Kind: JC, N: 4000, ThetaMax: 0.4, Seed: 105, Clusters: 150, Universe: 500, CoreLen: 8, Keep: 0.7, TailLen: 4},
		{Name: "JC-DBLPq3", Kind: JC, N: 3000, ThetaMax: 0.4, Seed: 106, Clusters: 120, Universe: 2000, CoreLen: 30, Keep: 0.85, TailLen: 8},
		{Name: "EU-Glove300", Kind: EU, N: 4000, Dim: 64, ThetaMax: 0.8, Seed: 107, Clusters: 8, Std: 0.12},
		{Name: "EU-Glove50", Kind: EU, N: 3000, Dim: 25, ThetaMax: 0.8, Seed: 108, Clusters: 8, Std: 0.15},
	}
}

// DefaultsByName indexes Defaults by name.
func DefaultsByName() map[string]Spec {
	m := map[string]Spec{}
	for _, s := range Defaults() {
		m[s.Name] = s
	}
	return m
}

// FourDefaults returns the per-distance default datasets used by the
// component/threshold/update experiments (paper boldface: HM-ImageNet,
// ED-AMiner, JC-BMS, EU-Glove300).
func FourDefaults() []Spec {
	byName := DefaultsByName()
	return []Spec{byName["HM-ImageNet"], byName["ED-AMiner"], byName["JC-BMS"], byName["EU-Glove300"]}
}

// HighDim returns the Table-8-style high-dimensional datasets used by the
// decoder-count experiment (Figure 6), scaled down.
func HighDim() []Spec {
	return []Spec{
		{Name: "HM-GIST2048", Kind: HM, N: 2500, Dim: 256, ThetaMax: 64, Seed: 201, Clusters: 10, Flip: 0.05},
		{Name: "ED-DBLP", Kind: ED, N: 2000, ThetaMax: 20, Seed: 104, Clusters: 40, Syllables: 12, MutRate: 0.08},
		{Name: "JC-Wikipedia", Kind: JC, N: 2500, ThetaMax: 0.4, Seed: 202, Clusters: 30, Universe: 4000, CoreLen: 60, Keep: 0.9, TailLen: 10},
		{Name: "EU-Youtube", Kind: EU, N: 2500, Dim: 128, ThetaMax: 0.8, Seed: 203, Clusters: 10, Std: 0.1},
	}
}

// GPHSpecs returns the Table-12-style binary datasets for the Hamming
// query-optimizer case study (Figures 13–14).
func GPHSpecs() []Spec {
	return []Spec{
		{Name: "HM-PubChem", Kind: HM, N: 4000, Dim: 128, ThetaMax: 32, Seed: 102, Clusters: 8, Flip: 0.06},
		{Name: "HM-UQVideo", Kind: HM, N: 4000, Dim: 128, ThetaMax: 12, Seed: 301, Clusters: 12, Flip: 0.04},
		{Name: "HM-fastText", Kind: HM, N: 4000, Dim: 96, ThetaMax: 24, Seed: 302, Clusters: 10, Flip: 0.07},
		{Name: "HM-EMNIST", Kind: HM, N: 4000, Dim: 96, ThetaMax: 32, Seed: 303, Clusters: 10, Flip: 0.09},
	}
}

// Materialized bundles one generated dataset; exactly one record slice is
// non-nil, matching Kind.
type Materialized struct {
	Spec    Spec
	Bits    []dist.BitVector
	Strings []string
	Sets    []dist.IntSet
	Vecs    [][]float64
}

// Len returns the record count.
func (m *Materialized) Len() int {
	switch m.Spec.Kind {
	case HM:
		return len(m.Bits)
	case ED:
		return len(m.Strings)
	case JC:
		return len(m.Sets)
	default:
		return len(m.Vecs)
	}
}

// Generate materializes the spec.
func Generate(s Spec) *Materialized {
	m := &Materialized{Spec: s}
	switch s.Kind {
	case HM:
		m.Bits = BinaryCodes(s.N, s.Dim, s.Clusters, s.Flip, s.Seed)
	case ED:
		m.Strings = Strings(s.N, s.Clusters, s.Syllables, s.MutRate, s.Seed)
	case JC:
		m.Sets = Sets(s.N, s.Universe, s.Clusters, s.CoreLen, s.Keep, s.TailLen, s.Seed)
	case EU:
		m.Vecs = Vectors(s.N, s.Dim, s.Clusters, s.Std, true, s.Seed)
	}
	return m
}

// MaxStringLen returns the longest string in a string dataset (ℓmax in
// Table 2), needed by the edit-distance feature extractor.
func MaxStringLen(records []string) int {
	m := 0
	for _, s := range records {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}
