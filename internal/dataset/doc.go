// Package dataset generates the synthetic workloads this reproduction uses
// in place of the paper's proprietary-scale datasets (Tables 2, 8, 11, 12)
// and implements the query-workload construction of Sections 6.1, 9.10 and
// 9.12: uniform/multiple/skewed sampling, train/valid/test splits, k-medoids
// clustering, out-of-dataset query generation, and update streams.
//
// Each generator reproduces the property the estimators actually interact
// with: a clustered, long-tailed distance distribution (paper Figure 1).
// Binary codes mimic learned hash codes (cluster prototypes plus Bernoulli
// bit flips), strings come from a syllable grammar with cluster-seeded
// mutations, sets share Zipf-weighted cluster cores, and real vectors are
// drawn from Gaussian mixtures. DefaultsByName exposes the Table 2 registry
// (HM-*, ED-*, JC-*, EU-* specs) that cmd/cardnet's -dataset flag selects
// from; internal/bench builds complete train/valid/test bundles on top.
package dataset
