package dataset

import "math/rand"

// UpdateOp is one batched update: insert the given fresh record indices (into
// an auxiliary pool) or delete existing dataset indices. The update
// experiment (paper Section 9.8) streams 200 ops of 5 records each.
type UpdateOp struct {
	Insert bool
	IDs    []int // pool indices for inserts, dataset indices for deletes
}

// UpdateStream plans nOps alternating-random insert/delete operations of
// batch records each over a dataset of size n with an insert pool of size
// poolN. Deletes never repeat an index; inserts consume the pool in order.
func UpdateStream(n, poolN, nOps, batch int, seed int64) []UpdateOp {
	rng := rand.New(rand.NewSource(seed))
	deleted := map[int]bool{}
	nextPool := 0
	ops := make([]UpdateOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		insert := rng.Intn(2) == 0
		if nextPool+batch > poolN {
			insert = false
		}
		if len(deleted)+batch > n/2 {
			insert = true
		}
		op := UpdateOp{Insert: insert}
		if insert {
			for j := 0; j < batch; j++ {
				op.IDs = append(op.IDs, nextPool)
				nextPool++
			}
		} else {
			for len(op.IDs) < batch {
				id := rng.Intn(n)
				if !deleted[id] {
					deleted[id] = true
					op.IDs = append(op.IDs, id)
				}
			}
		}
		ops = append(ops, op)
	}
	return ops
}
