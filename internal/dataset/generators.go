package dataset

import (
	"math/rand"

	"cardnet/internal/dist"
)

// BinaryCodes generates n dim-bit vectors from `clusters` random prototypes
// with per-bit flip probability flip. With flip ≈ 0.05–0.15 this mimics the
// output of a learned hash function (e.g. HashNet codes on ImageNet): points
// near their prototype, sharply varying per-query cardinality curves.
func BinaryCodes(n, dim, clusters int, flip float64, seed int64) []dist.BitVector {
	rng := rand.New(rand.NewSource(seed))
	protos := make([]dist.BitVector, clusters)
	for c := range protos {
		v := dist.NewBitVector(dim)
		for j := 0; j < dim; j++ {
			if rng.Intn(2) == 1 {
				v.SetBit(j, true)
			}
		}
		protos[c] = v
	}
	weights := clusterWeights(rng, clusters)
	out := make([]dist.BitVector, n)
	for i := range out {
		p := protos[sampleWeighted(rng, weights)]
		v := p.Clone()
		for j := 0; j < dim; j++ {
			if rng.Float64() < flip {
				v.SetBit(j, !v.Bit(j))
			}
		}
		out[i] = v
	}
	return out
}

// syllables used by the string grammar; concatenations resemble names and
// title words well enough for edit-distance workloads.
var syllables = []string{
	"an", "ar", "be", "chi", "da", "el", "fa", "gu", "ha", "in", "jo", "ka",
	"li", "mo", "na", "or", "pe", "qi", "ra", "sa", "ta", "ul", "va", "wa",
	"xi", "yo", "zu", "sh", "th", "er",
}

// Strings generates n strings around `clusters` base strings built from the
// syllable grammar. Each record applies random character edits to its base
// at rate mutRate, so clusters are tight in edit distance. baseSyllables
// controls length: ~2 for author-name-like data (ED-AMiner), ~10+ for
// title-like data (ED-DBLP).
func Strings(n, clusters, baseSyllables int, mutRate float64, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	bases := make([]string, clusters)
	for c := range bases {
		var b []byte
		for s := 0; s < baseSyllables; s++ {
			b = append(b, syllables[rng.Intn(len(syllables))]...)
		}
		bases[c] = string(b)
	}
	weights := clusterWeights(rng, clusters)
	out := make([]string, n)
	for i := range out {
		out[i] = mutate(rng, bases[sampleWeighted(rng, weights)], mutRate)
	}
	return out
}

// mutate applies per-position substitutions, insertions and deletions.
func mutate(rng *rand.Rand, s string, rate float64) string {
	b := []byte(s)
	out := make([]byte, 0, len(b)+4)
	for _, ch := range b {
		r := rng.Float64()
		switch {
		case r < rate/3: // delete
		case r < 2*rate/3: // substitute
			out = append(out, byte('a'+rng.Intn(26)))
		case r < rate: // insert before
			out = append(out, byte('a'+rng.Intn(26)), ch)
		default:
			out = append(out, ch)
		}
	}
	if len(out) == 0 {
		out = append(out, byte('a'+rng.Intn(26)))
	}
	return string(out)
}

// Sets generates n sets over a universe of the given size: each cluster has
// a core of coreLen Zipf-popular tokens; members keep each core token with
// probability keep and add a few random tail tokens. This mimics
// market-basket (JC-BMS) and q-gram-set (JC-DBLPq3) data: skewed token
// frequencies and tight clusters.
func Sets(n, universe, clusters, coreLen int, keep float64, tailLen int, seed int64) []dist.IntSet {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(universe-1))
	cores := make([][]uint32, clusters)
	for c := range cores {
		core := make([]uint32, coreLen)
		for i := range core {
			core[i] = uint32(zipf.Uint64())
		}
		cores[c] = core
	}
	weights := clusterWeights(rng, clusters)
	out := make([]dist.IntSet, n)
	for i := range out {
		core := cores[sampleWeighted(rng, weights)]
		var toks []uint32
		for _, tok := range core {
			if rng.Float64() < keep {
				toks = append(toks, tok)
			}
		}
		for t := 0; t < tailLen; t++ {
			if rng.Float64() < 0.5 {
				toks = append(toks, uint32(zipf.Uint64()))
			}
		}
		if len(toks) == 0 {
			toks = append(toks, core[0])
		}
		out[i] = dist.NewIntSet(toks)
	}
	return out
}

// Vectors generates n dim-dimensional vectors from a Gaussian mixture with
// the given within-cluster std. normalize projects onto the unit sphere, as
// the paper does for the GloVe datasets.
func Vectors(n, dim, clusters int, std float64, normalize bool, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for c := range centers {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		dist.Normalize(v)
		centers[c] = v
	}
	weights := clusterWeights(rng, clusters)
	out := make([][]float64, n)
	for i := range out {
		center := centers[sampleWeighted(rng, weights)]
		v := make([]float64, dim)
		for j := range v {
			v[j] = center[j] + rng.NormFloat64()*std
		}
		if normalize {
			dist.Normalize(v)
		}
		out[i] = v
	}
	return out
}

// clusterWeights draws skewed cluster sizes similar to the paper's Table 13
// (largest cluster several times the smallest).
func clusterWeights(rng *rand.Rand, clusters int) []float64 {
	w := make([]float64, clusters)
	var sum float64
	for i := range w {
		w[i] = 0.2 + rng.Float64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func sampleWeighted(rng *rand.Rand, w []float64) int {
	r := rng.Float64()
	var acc float64
	for i, v := range w {
		acc += v
		if r < acc {
			return i
		}
	}
	return len(w) - 1
}
