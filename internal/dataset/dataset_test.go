package dataset

import (
	"math"
	"testing"

	"cardnet/internal/dist"
)

func TestBinaryCodesShapeAndClustering(t *testing.T) {
	recs := BinaryCodes(300, 64, 4, 0.05, 1)
	if len(recs) != 300 {
		t.Fatalf("n=%d", len(recs))
	}
	for _, r := range recs {
		if r.Len != 64 {
			t.Fatalf("dim=%d", r.Len)
		}
	}
	// Clustered data: the mean pairwise distance of a sample should sit well
	// below the uniform expectation of dim/2.
	var sum, cnt float64
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			sum += float64(dist.Hamming(recs[i], recs[j]))
			cnt++
		}
	}
	if mean := sum / cnt; mean >= 30 {
		t.Fatalf("data not clustered: mean pairwise distance %.1f", mean)
	}
}

func TestBinaryCodesDeterministicBySeed(t *testing.T) {
	a := BinaryCodes(20, 32, 3, 0.1, 7)
	b := BinaryCodes(20, 32, 3, 0.1, 7)
	for i := range a {
		if dist.Hamming(a[i], b[i]) != 0 {
			t.Fatal("same seed must reproduce the dataset")
		}
	}
	c := BinaryCodes(20, 32, 3, 0.1, 8)
	same := true
	for i := range a {
		if dist.Hamming(a[i], c[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStringsGenerator(t *testing.T) {
	short := Strings(200, 20, 2, 0.15, 2)
	long := Strings(200, 20, 12, 0.08, 3)
	if len(short) != 200 || len(long) != 200 {
		t.Fatal("wrong count")
	}
	var sumShort, sumLong int
	for i := range short {
		sumShort += len(short[i])
		sumLong += len(long[i])
		if len(short[i]) == 0 {
			t.Fatal("empty string generated")
		}
	}
	if !(sumLong > 3*sumShort) {
		t.Fatalf("syllable knob has no effect: short=%d long=%d", sumShort, sumLong)
	}
}

func TestSetsGenerator(t *testing.T) {
	sets := Sets(300, 500, 10, 8, 0.8, 3, 4)
	if len(sets) != 300 {
		t.Fatal("wrong count")
	}
	for _, s := range sets {
		if len(s) == 0 {
			t.Fatal("empty set generated")
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatal("sets must be sorted and deduped")
			}
		}
	}
}

func TestVectorsGeneratorNormalized(t *testing.T) {
	vecs := Vectors(200, 16, 4, 0.1, true, 5)
	for _, v := range vecs {
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-9 {
			t.Fatalf("vector not normalized: ‖v‖=%v", math.Sqrt(n))
		}
	}
}

func TestGenerateAllSpecs(t *testing.T) {
	for _, s := range Defaults() {
		s.N = 100 // keep the test fast
		m := Generate(s)
		if m.Len() != 100 {
			t.Fatalf("%s: generated %d records", s.Name, m.Len())
		}
	}
	if len(FourDefaults()) != 4 {
		t.Fatal("FourDefaults should return 4 specs")
	}
	kinds := map[Kind]bool{}
	for _, s := range FourDefaults() {
		kinds[s.Kind] = true
	}
	if len(kinds) != 4 {
		t.Fatal("FourDefaults must cover all distance functions")
	}
	if len(HighDim()) != 4 || len(GPHSpecs()) != 4 {
		t.Fatal("auxiliary spec lists wrong size")
	}
}

func TestKindString(t *testing.T) {
	if HM.String() != "HM" || ED.String() != "ED" || JC.String() != "JC" || EU.String() != "EU" {
		t.Fatal("Kind names wrong")
	}
}

func TestSampleUniform(t *testing.T) {
	idx := SampleUniform(100, 0.1, 1)
	if len(idx) != 10 {
		t.Fatalf("len=%d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad index %d", i)
		}
		seen[i] = true
	}
	// Oversampling clamps.
	if got := SampleUniform(5, 2.0, 1); len(got) != 5 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestSampleMultipleUniform(t *testing.T) {
	idx := SampleMultipleUniform(100, 0.1, 5, 2)
	if len(idx) != 10 {
		t.Fatalf("len=%d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("bad index %d", i)
		}
	}
}

func TestSampleSkewedOverrepresentsSmallClusters(t *testing.T) {
	// Cluster 0 has 90 members, cluster 1 has 10. Uniform-over-clusters
	// sampling should pick cluster 1 about half the time.
	assign := make([]int, 100)
	for i := 90; i < 100; i++ {
		assign[i] = 1
	}
	idx := SampleSkewed(assign, 2, 2000, 3)
	small := 0
	for _, i := range idx {
		if assign[i] == 1 {
			small++
		}
	}
	frac := float64(small) / float64(len(idx))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("small-cluster fraction %.2f, want ≈0.5", frac)
	}
}

func TestSplitWorkload(t *testing.T) {
	queries := make([]int, 100)
	for i := range queries {
		queries[i] = i
	}
	sp := SplitWorkload(queries, 4)
	if len(sp.Train) != 80 || len(sp.Valid) != 10 || len(sp.Test) != 10 {
		t.Fatalf("split sizes %d/%d/%d", len(sp.Train), len(sp.Valid), len(sp.Test))
	}
	seen := map[int]bool{}
	for _, part := range [][]int{sp.Train, sp.Valid, sp.Test} {
		for _, q := range part {
			if seen[q] {
				t.Fatalf("query %d in two partitions", q)
			}
			seen[q] = true
		}
	}
}

func TestThresholdGrid(t *testing.T) {
	g := ThresholdGrid(20, 20)
	if len(g) != 21 || g[0] != 0 || g[20] != 20 {
		t.Fatalf("grid=%v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid must be increasing")
		}
	}
}

func TestKMedoids(t *testing.T) {
	// Two well-separated 1-D blobs.
	points := make([]float64, 40)
	for i := 0; i < 20; i++ {
		points[i] = float64(i) * 0.01
	}
	for i := 20; i < 40; i++ {
		points[i] = 100 + float64(i)*0.01
	}
	d := func(i, j int) float64 { return math.Abs(points[i] - points[j]) }
	medoids, assign := KMedoids(40, 2, d, 10, 5)
	if len(medoids) != 2 {
		t.Fatalf("medoids=%v", medoids)
	}
	// All members of a blob must share an assignment.
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("blob 1 split: %v", assign[:20])
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatalf("blob 2 split: %v", assign[20:])
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("blobs merged")
	}
	sizes := ClusterSizes(assign, 2)
	if sizes[0] != 20 || sizes[1] != 20 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestKMedoidsKLargerThanN(t *testing.T) {
	d := func(i, j int) float64 { return float64((i - j) * (i - j)) }
	medoids, assign := KMedoids(3, 10, d, 3, 1)
	if len(medoids) != 3 || len(assign) != 3 {
		t.Fatalf("clamp failed: %v %v", medoids, assign)
	}
}

func TestOutOfDatasetAllKinds(t *testing.T) {
	for _, s := range Defaults() {
		s.N = 150
		m := Generate(s)
		// Medoids via a cheap distance on indices of the materialized data.
		medoids := []int{0, 50, 100}
		ood := OutOfDataset(m, medoids, 60, 20, 9)
		if ood.Len() != 20 {
			t.Fatalf("%s: ood len=%d", s.Name, ood.Len())
		}
		if ood.Spec.Kind != s.Kind {
			t.Fatal("kind mismatch")
		}
	}
}

func TestOutOfDatasetQueriesAreFar(t *testing.T) {
	s := Spec{Name: "t", Kind: HM, N: 200, Dim: 32, ThetaMax: 10, Seed: 3, Clusters: 2, Flip: 0.02}
	m := Generate(s)
	ood := OutOfDataset(m, []int{0, 1, 2}, 500, 10, 11)
	// Far queries should be farther from medoid 0 than a typical record is.
	var dataSum, oodSum float64
	for i := 0; i < 100; i++ {
		dataSum += float64(dist.Hamming(m.Bits[i], m.Bits[0]))
	}
	for _, q := range ood.Bits {
		oodSum += float64(dist.Hamming(q, m.Bits[0]))
	}
	if oodSum/10 <= dataSum/100 {
		t.Fatalf("ood queries not far: ood mean %.1f vs data mean %.1f", oodSum/10, dataSum/100)
	}
}

func TestUpdateStream(t *testing.T) {
	ops := UpdateStream(1000, 600, 100, 5, 13)
	if len(ops) != 100 {
		t.Fatalf("ops=%d", len(ops))
	}
	pool := 0
	deleted := map[int]bool{}
	for _, op := range ops {
		if len(op.IDs) != 5 {
			t.Fatalf("batch size %d", len(op.IDs))
		}
		if op.Insert {
			for _, id := range op.IDs {
				if id != pool {
					t.Fatalf("insert pool ids must be sequential: got %d want %d", id, pool)
				}
				pool++
			}
		} else {
			for _, id := range op.IDs {
				if deleted[id] {
					t.Fatalf("double delete of %d", id)
				}
				deleted[id] = true
			}
		}
	}
	if pool == 0 || len(deleted) == 0 {
		t.Fatal("stream should mix inserts and deletes")
	}
}

func TestMaxStringLen(t *testing.T) {
	if got := MaxStringLen([]string{"a", "abc", "ab"}); got != 3 {
		t.Fatalf("MaxStringLen=%d", got)
	}
	if got := MaxStringLen(nil); got != 0 {
		t.Fatalf("MaxStringLen(nil)=%d", got)
	}
}
