package dataset

import (
	"math/rand"
	"sort"

	"cardnet/internal/dist"
)

// OutOfDataset generates `candidates` random queries for the dataset's data
// type following Section 9.10 (uniform bits for binary vectors, random
// grammar strings for strings, uniform-length random sets over the dataset's
// token universe, uniform[−1,1] coordinates for real vectors), rejects any
// that already occur in the dataset, and keeps the `keep` queries with the
// largest sum of squared distances to the k-medoid centroids.
func OutOfDataset(m *Materialized, medoidIdx []int, candidates, keep int, seed int64) *Materialized {
	rng := rand.New(rand.NewSource(seed))
	out := &Materialized{Spec: m.Spec}

	var scores []scored

	switch m.Spec.Kind {
	case HM:
		existing := map[string]bool{}
		for _, r := range m.Bits {
			existing[bitKey(r)] = true
		}
		var cands []dist.BitVector
		for len(cands) < candidates {
			v := dist.NewBitVector(m.Spec.Dim)
			for j := 0; j < m.Spec.Dim; j++ {
				if rng.Intn(2) == 1 {
					v.SetBit(j, true)
				}
			}
			if existing[bitKey(v)] {
				continue
			}
			cands = append(cands, v)
		}
		for i, c := range cands {
			var s float64
			for _, mi := range medoidIdx {
				d := float64(dist.Hamming(c, m.Bits[mi]))
				s += d * d
			}
			scores = append(scores, scored{i, s})
		}
		sortScores(scores)
		for _, sc := range scores[:keep] {
			out.Bits = append(out.Bits, cands[sc.idx])
		}
	case ED:
		existing := map[string]bool{}
		for _, r := range m.Strings {
			existing[r] = true
		}
		var cands []string
		for len(cands) < candidates {
			s := Strings(1, 1, m.Spec.Syllables, 0.5, rng.Int63())[0]
			if existing[s] {
				continue
			}
			cands = append(cands, s)
		}
		for i, c := range cands {
			var s float64
			for _, mi := range medoidIdx {
				d := float64(dist.Edit(c, m.Strings[mi]))
				s += d * d
			}
			scores = append(scores, scored{i, s})
		}
		sortScores(scores)
		for _, sc := range scores[:keep] {
			out.Strings = append(out.Strings, cands[sc.idx])
		}
	case JC:
		universe, lmin, lmax := setUniverse(m.Sets)
		existing := map[string]bool{}
		for _, r := range m.Sets {
			existing[setKey(r)] = true
		}
		var cands []dist.IntSet
		for len(cands) < candidates {
			l := lmin + rng.Intn(lmax-lmin+1)
			toks := make([]uint32, l)
			for j := range toks {
				toks[j] = universe[rng.Intn(len(universe))]
			}
			s := dist.NewIntSet(toks)
			if existing[setKey(s)] {
				continue
			}
			cands = append(cands, s)
		}
		for i, c := range cands {
			var s float64
			for _, mi := range medoidIdx {
				d := dist.Jaccard(c, m.Sets[mi])
				s += d * d
			}
			scores = append(scores, scored{i, s})
		}
		sortScores(scores)
		for _, sc := range scores[:keep] {
			out.Sets = append(out.Sets, cands[sc.idx])
		}
	case EU:
		dim := m.Spec.Dim
		var cands [][]float64
		for len(cands) < candidates {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.Float64()*2 - 1
			}
			dist.Normalize(v) // dataset vectors are normalized; stay on the sphere
			cands = append(cands, v)
		}
		for i, c := range cands {
			var s float64
			for _, mi := range medoidIdx {
				d := dist.Euclidean(c, m.Vecs[mi])
				s += d * d
			}
			scores = append(scores, scored{i, s})
		}
		sortScores(scores)
		for _, sc := range scores[:keep] {
			out.Vecs = append(out.Vecs, cands[sc.idx])
		}
	}
	return out

}

func bitKey(b dist.BitVector) string {
	buf := make([]byte, 0, len(b.Bits)*8)
	for _, w := range b.Bits {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

func setKey(s dist.IntSet) string {
	buf := make([]byte, 0, len(s)*4)
	for _, t := range s {
		buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return string(buf)
}

func setUniverse(sets []dist.IntSet) (tokens []uint32, lmin, lmax int) {
	seen := map[uint32]bool{}
	lmin, lmax = 1<<30, 0
	for _, s := range sets {
		if len(s) < lmin {
			lmin = len(s)
		}
		if len(s) > lmax {
			lmax = len(s)
		}
		for _, t := range s {
			if !seen[t] {
				seen[t] = true
				tokens = append(tokens, t)
			}
		}
	}
	if lmin > lmax {
		lmin, lmax = 1, 1
	}
	if lmin < 1 {
		lmin = 1
	}
	if lmax < lmin {
		lmax = lmin
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	return tokens, lmin, lmax
}

// scored pairs a candidate index with its distance-to-medoids score.
type scored struct {
	idx   int
	score float64
}

func sortScores(s []scored) {
	sort.Slice(s, func(i, j int) bool { return s[i].score > s[j].score })
}
