package dataset

import "math/rand"

// KMedoids clusters n items with a generic distance function using the
// standard alternating assign/update heuristic (a PAM-style k-medoids, as
// the paper uses for skewed sampling, Table 13, and out-of-dataset query
// construction, Section 9.10). It returns the medoid indices and each item's
// cluster assignment.
func KMedoids(n, k int, d func(i, j int) float64, iters int, seed int64) (medoids []int, assign []int) {
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	medoids = append([]int(nil), rng.Perm(n)[:k]...)
	assign = make([]int, n)

	assignAll := func() {
		for i := 0; i < n; i++ {
			best, bestD := 0, d(i, medoids[0])
			for c := 1; c < k; c++ {
				if dd := d(i, medoids[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			assign[i] = best
		}
	}
	assignAll()

	for it := 0; it < iters; it++ {
		changed := false
		for c := 0; c < k; c++ {
			// Choose the member minimizing total within-cluster distance.
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestCost := medoids[c], clusterCost(members, medoids[c], d)
			for _, cand := range members {
				if cost := clusterCost(members, cand, d); cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		assignAll()
	}
	return medoids, assign
}

func clusterCost(members []int, medoid int, d func(i, j int) float64) float64 {
	var s float64
	for _, m := range members {
		s += d(m, medoid)
	}
	return s
}

// ClusterSizes tallies cluster sizes in descending order (paper Table 13).
func ClusterSizes(assign []int, k int) []int {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	// Insertion sort, descending; k is small.
	for i := 1; i < len(sizes); i++ {
		v := sizes[i]
		j := i - 1
		for j >= 0 && sizes[j] < v {
			sizes[j+1] = sizes[j]
			j--
		}
		sizes[j+1] = v
	}
	return sizes
}
