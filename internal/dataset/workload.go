package dataset

import "math/rand"

// Split holds index-based train/validation/test partitions of a query
// workload (paper Section 6.1: 10% of the dataset is sampled as the query
// workload Q, split 80:10:10).
type Split struct {
	Train, Valid, Test []int
}

// SampleUniform draws ⌈frac·n⌉ distinct record indices uniformly — the
// paper's "single uniform sample" workload policy.
func SampleUniform(n int, frac float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	k := int(frac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// SampleMultipleUniform draws `rounds` independent uniform samples of the
// same total size as one frac-sample and concatenates them — the "multiple
// uniform samples" policy of Section 9.12. Indices may repeat across rounds,
// as in repeated sampling with replacement between rounds.
func SampleMultipleUniform(n int, frac float64, rounds int, seed int64) []int {
	perRound := int(frac*float64(n)/float64(rounds) + 0.5)
	if perRound < 1 {
		perRound = 1
	}
	var out []int
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7919))
		perm := rng.Perm(n)
		k := perRound
		if k > n {
			k = n
		}
		out = append(out, perm[:k]...)
	}
	return out
}

// SampleSkewed implements the "single skewed sample" policy of Section 9.12:
// records are assigned to clusters; each draw first picks a cluster
// uniformly, then a member uniformly, so small clusters are over-represented
// relative to their size.
func SampleSkewed(assign []int, clusters int, size int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	members := make([][]int, clusters)
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	// Drop empty clusters so uniform cluster choice is well defined.
	var nonEmpty [][]int
	for _, m := range members {
		if len(m) > 0 {
			nonEmpty = append(nonEmpty, m)
		}
	}
	out := make([]int, size)
	for i := range out {
		m := nonEmpty[rng.Intn(len(nonEmpty))]
		out[i] = m[rng.Intn(len(m))]
	}
	return out
}

// SplitWorkload splits query indices 80:10:10 after a seeded shuffle.
func SplitWorkload(queries []int, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	q := make([]int, len(queries))
	copy(q, queries)
	rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	nTrain := len(q) * 8 / 10
	nValid := len(q) / 10
	return Split{
		Train: q[:nTrain],
		Valid: q[nTrain : nTrain+nValid],
		Test:  q[nTrain+nValid:],
	}
}

// ThresholdGrid returns g+1 uniformly spaced thresholds covering [0, θmax]
// — the threshold set S of Section 6.1.
func ThresholdGrid(thetaMax float64, g int) []float64 {
	out := make([]float64, g+1)
	for i := 0; i <= g; i++ {
		out[i] = thetaMax * float64(i) / float64(g)
	}
	return out
}
