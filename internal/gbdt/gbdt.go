// Package gbdt implements gradient-boosted regression trees from scratch as
// the substrate for the paper's TL-XGB and TL-LGBM baselines (Section
// 9.1.2). Trees use histogram split finding over quantile bins; two growth
// strategies are provided — level-wise (XGBoost's classic style) and
// leaf-wise best-first (LightGBM's style) — plus optional per-feature
// monotone-increasing constraints, which the baselines apply to the
// threshold feature so their estimates stay monotone like the paper reports.
package gbdt

import (
	"math"
	"sort"
)

// Growth selects the tree-growth strategy.
type Growth int

// Growth strategies.
const (
	LevelWise Growth = iota // XGBoost-style: expand the whole frontier per depth
	LeafWise                // LightGBM-style: always split the best leaf next
)

// Config holds boosting hyperparameters.
type Config struct {
	Trees        int
	MaxDepth     int     // level-wise depth cap
	MaxLeaves    int     // leaf-wise leaf cap
	LearningRate float64 // shrinkage
	MinSamples   int     // minimum samples per leaf
	Bins         int     // histogram bins per feature
	Lambda       float64 // L2 regularization on leaf values
	Growth       Growth
	// MonotoneInc lists feature indices whose effect must be
	// non-decreasing (the threshold feature for cardinality estimation).
	MonotoneInc []int
}

// DefaultConfig returns sane small-scale defaults.
func DefaultConfig(growth Growth) Config {
	return Config{
		Trees:        60,
		MaxDepth:     5,
		MaxLeaves:    24,
		LearningRate: 0.15,
		MinSamples:   4,
		Bins:         32,
		Lambda:       1,
		Growth:       growth,
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	Cfg   Config
	Base  float64 // initial prediction (target mean)
	Trees []*Tree
}

// Tree is one regression tree over binned features.
type Tree struct {
	Nodes []Node
	// thresholds used at split time are raw feature values (bin uppers).
}

// Node is one tree node; Leaf nodes carry Value.
type Node struct {
	Feature     int
	Threshold   float64 // go left when x[Feature] <= Threshold
	Left, Right int     // children indices; -1 for leaves
	Value       float64
	Leaf        bool
}

// Fit trains the ensemble on rows X (n × d, row-major slices) and targets y.
func Fit(cfg Config, x [][]float64, y []float64) *Model {
	m := &Model{Cfg: cfg}
	n := len(x)
	if n == 0 {
		return m
	}
	for _, v := range y {
		m.Base += v
	}
	m.Base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.Base
	}
	residual := make([]float64, n)

	cuts := binCuts(x, cfg.Bins)
	binned := binRows(x, cuts)

	mono := map[int]bool{}
	for _, f := range cfg.MonotoneInc {
		mono[f] = true
	}

	for t := 0; t < cfg.Trees; t++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		tree := growTree(cfg, binned, cuts, x, residual, mono)
		m.Trees = append(m.Trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(x[i])
		}
	}
	return m
}

// Predict evaluates the ensemble on one row.
func (m *Model) Predict(row []float64) float64 {
	out := m.Base
	for _, t := range m.Trees {
		out += m.Cfg.LearningRate * t.predict(row)
	}
	return out
}

// NumNodes returns the total node count, a size proxy.
func (m *Model) NumNodes() int {
	n := 0
	for _, t := range m.Trees {
		n += len(t.Nodes)
	}
	return n
}

func (t *Tree) predict(row []float64) float64 {
	i := 0
	for !t.Nodes[i].Leaf {
		nd := &t.Nodes[i]
		if row[nd.Feature] <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
	return t.Nodes[i].Value
}

// binCuts computes per-feature quantile cut points (bin upper bounds).
func binCuts(x [][]float64, bins int) [][]float64 {
	if len(x) == 0 {
		return nil
	}
	d := len(x[0])
	cuts := make([][]float64, d)
	vals := make([]float64, len(x))
	for f := 0; f < d; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sort.Float64s(vals)
		var cs []float64
		for b := 1; b < bins; b++ {
			v := vals[b*len(vals)/bins]
			if len(cs) == 0 || v > cs[len(cs)-1] {
				cs = append(cs, v)
			}
		}
		cuts[f] = cs
	}
	return cuts
}

// binRows maps every feature value to its bin index.
func binRows(x [][]float64, cuts [][]float64) [][]uint8 {
	out := make([][]uint8, len(x))
	for i, row := range x {
		br := make([]uint8, len(row))
		for f, v := range row {
			br[f] = uint8(sort.SearchFloat64s(cuts[f], v))
		}
		out[i] = br
	}
	return out
}

// leafCandidate describes a splittable frontier node.
type leafCandidate struct {
	node    int
	rows    []int
	depth   int
	lo, hi  float64 // monotone value bounds inherited from ancestors
	gain    float64 // best split gain (filled by findSplit)
	split   split
	canGrow bool
}

type split struct {
	feature  int
	bin      int
	thr      float64
	leftSum  float64
	leftCnt  int
	rightSum float64
	rightCnt int
	valid    bool
}

// growTree builds one tree on the residuals.
func growTree(cfg Config, binned [][]uint8, cuts [][]float64, x [][]float64, residual []float64, mono map[int]bool) *Tree {
	t := &Tree{}
	rows := make([]int, len(residual))
	for i := range rows {
		rows[i] = i
	}
	root := leafCandidate{node: t.addLeaf(leafValue(cfg, rows, residual, math.Inf(-1), math.Inf(1))),
		rows: rows, lo: math.Inf(-1), hi: math.Inf(1)}

	switch cfg.Growth {
	case LeafWise:
		frontier := []leafCandidate{root}
		leaves := 1
		for leaves < cfg.MaxLeaves {
			bestIdx := -1
			for i := range frontier {
				if !frontier[i].canGrow {
					frontier[i].split = findSplit(cfg, binned, cuts, frontier[i].rows, residual, mono, frontier[i].lo, frontier[i].hi)
					frontier[i].gain = frontier[i].split.gain(cfg)
					frontier[i].canGrow = true
				}
				if frontier[i].split.valid && (bestIdx == -1 || frontier[i].gain > frontier[bestIdx].gain) {
					bestIdx = i
				}
			}
			if bestIdx == -1 {
				break
			}
			cand := frontier[bestIdx]
			frontier = append(frontier[:bestIdx], frontier[bestIdx+1:]...)
			l, r := t.applySplit(cfg, cand, binned, residual, mono)
			frontier = append(frontier, l, r)
			leaves++
		}
	default: // LevelWise
		frontier := []leafCandidate{root}
		for depth := 0; depth < cfg.MaxDepth && len(frontier) > 0; depth++ {
			var next []leafCandidate
			for _, cand := range frontier {
				cand.split = findSplit(cfg, binned, cuts, cand.rows, residual, mono, cand.lo, cand.hi)
				if !cand.split.valid {
					continue
				}
				l, r := t.applySplit(cfg, cand, binned, residual, mono)
				next = append(next, l, r)
			}
			frontier = next
		}
	}
	return t
}

func (t *Tree) addLeaf(value float64) int {
	t.Nodes = append(t.Nodes, Node{Leaf: true, Value: value, Left: -1, Right: -1})
	return len(t.Nodes) - 1
}

// applySplit converts a leaf into an internal node and returns the two new
// leaf candidates, threading monotone bounds to children.
func (t *Tree) applySplit(cfg Config, cand leafCandidate, binned [][]uint8, residual []float64, mono map[int]bool) (leafCandidate, leafCandidate) {
	s := cand.split
	var leftRows, rightRows []int
	for _, r := range cand.rows {
		if int(binned[r][s.feature]) <= s.bin {
			leftRows = append(leftRows, r)
		} else {
			rightRows = append(rightRows, r)
		}
	}
	lLo, lHi := cand.lo, cand.hi
	rLo, rHi := cand.lo, cand.hi
	if mono[s.feature] {
		// Children along a monotone feature must keep left ≤ mid ≤ right.
		leftMean := s.leftSum / float64(s.leftCnt)
		rightMean := s.rightSum / float64(s.rightCnt)
		mid := (clamp(leftMean, cand.lo, cand.hi) + clamp(rightMean, cand.lo, cand.hi)) / 2
		lHi = math.Min(lHi, mid)
		rLo = math.Max(rLo, mid)
	}
	lVal := leafValue(cfg, leftRows, residual, lLo, lHi)
	rVal := leafValue(cfg, rightRows, residual, rLo, rHi)

	// addLeaf may grow t.Nodes, so take the node address only afterwards.
	left := t.addLeaf(lVal)
	right := t.addLeaf(rVal)
	nd := &t.Nodes[cand.node]
	nd.Leaf = false
	nd.Feature = s.feature
	nd.Threshold = s.thr
	nd.Left = left
	nd.Right = right
	return leafCandidate{node: left, rows: leftRows, depth: cand.depth + 1, lo: lLo, hi: lHi},
		leafCandidate{node: right, rows: rightRows, depth: cand.depth + 1, lo: rLo, hi: rHi}
}

// leafValue is the regularized mean residual, clamped to monotone bounds.
func leafValue(cfg Config, rows []int, residual []float64, lo, hi float64) float64 {
	var sum float64
	for _, r := range rows {
		sum += residual[r]
	}
	v := sum / (float64(len(rows)) + cfg.Lambda)
	return clamp(v, lo, hi)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gain scores a split by variance reduction.
func (s split) gain(cfg Config) float64 {
	if !s.valid {
		return math.Inf(-1)
	}
	l := s.leftSum * s.leftSum / (float64(s.leftCnt) + cfg.Lambda)
	r := s.rightSum * s.rightSum / (float64(s.rightCnt) + cfg.Lambda)
	tot := (s.leftSum + s.rightSum) * (s.leftSum + s.rightSum) /
		(float64(s.leftCnt+s.rightCnt) + cfg.Lambda)
	return l + r - tot
}

// findSplit scans histogram bins of every feature for the best split. For
// monotone features, splits whose left mean exceeds the right mean are
// rejected (the standard monotone-constraint rule).
func findSplit(cfg Config, binned [][]uint8, cuts [][]float64, rows []int, residual []float64, mono map[int]bool, lo, hi float64) split {
	best := split{valid: false}
	if len(rows) < 2*cfg.MinSamples {
		return best
	}
	d := len(binned[0])
	bestGain := math.Inf(-1)
	for f := 0; f < d; f++ {
		nb := len(cuts[f]) + 1
		if nb < 2 {
			continue
		}
		sums := make([]float64, nb)
		cnts := make([]int, nb)
		for _, r := range rows {
			b := binned[r][f]
			sums[b] += residual[r]
			cnts[b]++
		}
		var ls float64
		var lc int
		var ts float64
		tc := 0
		for b := 0; b < nb; b++ {
			ts += sums[b]
			tc += cnts[b]
		}
		for b := 0; b < nb-1; b++ {
			ls += sums[b]
			lc += cnts[b]
			rc := tc - lc
			if lc < cfg.MinSamples || rc < cfg.MinSamples {
				continue
			}
			rs := ts - ls
			if mono[f] && ls/float64(lc) > rs/float64(rc) {
				continue
			}
			s := split{feature: f, bin: b, thr: cuts[f][b],
				leftSum: ls, leftCnt: lc, rightSum: rs, rightCnt: rc, valid: true}
			if g := s.gain(cfg); g > bestGain && g > 1e-12 {
				bestGain = g
				best = s
			}
		}
	}
	return best
}
