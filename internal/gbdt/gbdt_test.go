package gbdt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeData(rng *rand.Rand, n int, f func(a, b float64) float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = f(a, b)
	}
	return x, y
}

func mse(m *Model, x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		s += d * d
	}
	return s / float64(len(x))
}

func TestFitLearnsAdditiveFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(a, b float64) float64 { return 3*a + math.Sin(b)*5 }
	x, y := makeData(rng, 500, f)
	for _, g := range []Growth{LevelWise, LeafWise} {
		m := Fit(DefaultConfig(g), x, y)
		if e := mse(m, x, y); e > 1.0 {
			t.Fatalf("growth=%v train MSE %.3f too high", g, e)
		}
	}
}

func TestEmptyFit(t *testing.T) {
	m := Fit(DefaultConfig(LevelWise), nil, nil)
	if m.Base != 0 || len(m.Trees) != 0 {
		t.Fatalf("empty fit should be trivial: %+v", m)
	}
}

func TestConstantTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := makeData(rng, 100, func(a, b float64) float64 { return 0 })
	y := make([]float64, 100)
	for i := range y {
		y[i] = 7
	}
	m := Fit(DefaultConfig(LeafWise), x, y)
	if math.Abs(m.Predict(x[0])-7) > 1e-6 {
		t.Fatalf("constant target mispredicted: %v", m.Predict(x[0]))
	}
}

func TestMonotoneConstraintHolds(t *testing.T) {
	// y increases with feature 0 but has confounding noise; with the
	// constraint, predictions must never decrease in feature 0.
	rng := rand.New(rand.NewSource(3))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		x[i] = []float64{a, b}
		y[i] = 2*a + rng.NormFloat64()*3 + b
	}
	for _, g := range []Growth{LevelWise, LeafWise} {
		cfg := DefaultConfig(g)
		cfg.MonotoneInc = []int{0}
		m := Fit(cfg, x, y)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			b := r.Float64() * 10
			prev := math.Inf(-1)
			for a := 0.0; a <= 10; a += 0.25 {
				p := m.Predict([]float64{a, b})
				if p < prev-1e-9 {
					return false
				}
				prev = p
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("growth=%v violates monotone constraint: %v", g, err)
		}
	}
}

func TestMonotoneConstraintStillFits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := makeData(rng, 400, func(a, b float64) float64 { return a * 2 })
	cfg := DefaultConfig(LevelWise)
	cfg.MonotoneInc = []int{0}
	m := Fit(cfg, x, y)
	if e := mse(m, x, y); e > 1.5 {
		t.Fatalf("monotone fit too loose: MSE %.3f", e)
	}
}

func TestLeafWiseRespectsMaxLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := makeData(rng, 300, func(a, b float64) float64 { return a*b + a })
	cfg := DefaultConfig(LeafWise)
	cfg.MaxLeaves = 4
	cfg.Trees = 3
	m := Fit(cfg, x, y)
	for _, tree := range m.Trees {
		leaves := 0
		for _, nd := range tree.Nodes {
			if nd.Leaf {
				leaves++
			}
		}
		if leaves > 4 {
			t.Fatalf("tree has %d leaves, cap 4", leaves)
		}
	}
}

func TestLevelWiseRespectsDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := makeData(rng, 300, func(a, b float64) float64 { return a * b })
	cfg := DefaultConfig(LevelWise)
	cfg.MaxDepth = 2
	cfg.Trees = 2
	m := Fit(cfg, x, y)
	for _, tree := range m.Trees {
		// Depth-2 tree: ≤ 3 internal + 4 leaves = 7 nodes.
		if len(tree.Nodes) > 7 {
			t.Fatalf("tree has %d nodes for depth cap 2", len(tree.Nodes))
		}
	}
}

func TestMinSamplesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := makeData(rng, 30, func(a, b float64) float64 { return a })
	cfg := DefaultConfig(LevelWise)
	cfg.MinSamples = 20 // only the root qualifies, no split possible
	m := Fit(cfg, x, y)
	for _, tree := range m.Trees {
		if len(tree.Nodes) != 1 {
			t.Fatalf("expected stump, got %d nodes", len(tree.Nodes))
		}
	}
}

func TestNumNodesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := makeData(rng, 200, func(a, b float64) float64 { return a + b })
	m := Fit(DefaultConfig(LeafWise), x, y)
	if m.NumNodes() <= 0 {
		t.Fatal("NumNodes must be positive after training")
	}
}

func TestPredictionsFiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := makeData(rng, 300, func(a, b float64) float64 { return a*a - b })
	m := Fit(DefaultConfig(LeafWise), x, y)
	f := func(a, b float64) bool {
		p := m.Predict([]float64{math.Mod(math.Abs(a), 20), math.Mod(math.Abs(b), 20)})
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
