package nn

import (
	"math"
	"math/rand"

	"cardnet/internal/tensor"
)

// LSTM is a single-direction long short-term memory cell operating on one
// sequence at a time (batch size 1), with full backpropagation through time.
// It is the substrate of the DL-BiLSTM baseline, which replaces the
// edit-distance feature extraction with a character-level recurrent encoder
// (paper Section 9.1.2).
//
// Gate layout in the stacked parameters: [input; forget; cell; output], each
// a Hidden-sized block.
type LSTM struct {
	In, Hidden int
	Wx         *Param // 4H×In, input projection
	Wh         *Param // 4H×H, recurrent projection
	B          *Param // 4H
}

// NewLSTM initializes an LSTM with Glorot weights and forget-gate bias 1
// (the standard trick that eases gradient flow early in training).
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{In: in, Hidden: hidden,
		Wx: newParam("Wx", 4*hidden*in),
		Wh: newParam("Wh", 4*hidden*hidden),
		B:  newParam("b", 4*hidden)}
	tensor.GlorotUniform(rng, l.Wx.Value, in, 4*hidden)
	tensor.GlorotUniform(rng, l.Wh.Value, hidden, 4*hidden)
	for i := l.Hidden; i < 2*l.Hidden; i++ {
		l.B.Value[i] = 1
	}
	return l
}

// Params returns the learnables.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// lstmStep caches one timestep's tensors for BPTT.
type lstmStep struct {
	x          []float64
	i, f, g, o []float64 // post-activation gates
	c, h       []float64 // new cell and hidden
	cPrev      []float64
}

// LSTMTape holds the forward caches of one sequence.
type LSTMTape struct {
	steps []lstmStep
}

// H returns the hidden state after step t (nil-safe copy not taken).
func (t *LSTMTape) H(i int) []float64 { return t.steps[i].h }

// Len returns the number of steps.
func (t *LSTMTape) Len() int { return len(t.steps) }

// Forward runs the cell over a sequence of input vectors, returning the
// final hidden state and the tape for Backward. Empty sequences return a
// zero state and an empty tape.
func (l *LSTM) Forward(seq [][]float64) ([]float64, *LSTMTape) {
	h := make([]float64, l.Hidden)
	c := make([]float64, l.Hidden)
	tape := &LSTMTape{}
	for _, x := range seq {
		st := lstmStep{x: x, cPrev: c}
		z := make([]float64, 4*l.Hidden)
		// z = Wx·x + Wh·h + b
		for r := 0; r < 4*l.Hidden; r++ {
			s := l.B.Value[r]
			wxr := l.Wx.Value[r*l.In : (r+1)*l.In]
			for j, xv := range x {
				s += wxr[j] * xv
			}
			whr := l.Wh.Value[r*l.Hidden : (r+1)*l.Hidden]
			for j, hv := range h {
				s += whr[j] * hv
			}
			z[r] = s
		}
		H := l.Hidden
		st.i = sigmoidVec(z[0:H])
		st.f = sigmoidVec(z[H : 2*H])
		st.g = tanhVec(z[2*H : 3*H])
		st.o = sigmoidVec(z[3*H : 4*H])
		st.c = make([]float64, H)
		st.h = make([]float64, H)
		for j := 0; j < H; j++ {
			st.c[j] = st.f[j]*c[j] + st.i[j]*st.g[j]
			st.h[j] = st.o[j] * math.Tanh(st.c[j])
		}
		c, h = st.c, st.h
		tape.steps = append(tape.steps, st)
	}
	out := make([]float64, l.Hidden)
	copy(out, h)
	return out, tape
}

// Backward runs BPTT given dL/dh at every step (dhs[t] may be nil for steps
// without direct loss) and accumulates parameter gradients. It returns
// dL/dx per step for upstream layers (e.g. a character-embedding table).
func (l *LSTM) Backward(tape *LSTMTape, dhs [][]float64) [][]float64 {
	H := l.Hidden
	dxs := make([][]float64, tape.Len())
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	for t := tape.Len() - 1; t >= 0; t-- {
		st := &tape.steps[t]
		dh := make([]float64, H)
		copy(dh, dhNext)
		if t < len(dhs) && dhs[t] != nil {
			tensor.Axpy(1, dhs[t], dh)
		}
		dz := make([]float64, 4*H)
		dcPrev := make([]float64, H)
		for j := 0; j < H; j++ {
			tc := math.Tanh(st.c[j])
			do := dh[j] * tc
			dc := dh[j]*st.o[j]*(1-tc*tc) + dcNext[j]
			di := dc * st.g[j]
			df := dc * st.cPrev[j]
			dg := dc * st.i[j]
			dcPrev[j] = dc * st.f[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[H+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = do * st.o[j] * (1 - st.o[j])
		}
		// Parameter and input gradients.
		dx := make([]float64, l.In)
		var hPrev []float64
		if t > 0 {
			hPrev = tape.steps[t-1].h
		}
		for r := 0; r < 4*H; r++ {
			g := dz[r]
			if g == 0 {
				continue
			}
			l.B.Grad[r] += g
			wxg := l.Wx.Grad[r*l.In : (r+1)*l.In]
			wxr := l.Wx.Value[r*l.In : (r+1)*l.In]
			for j, xv := range st.x {
				wxg[j] += g * xv
				dx[j] += g * wxr[j]
			}
			if hPrev != nil {
				whg := l.Wh.Grad[r*H : (r+1)*H]
				for j, hv := range hPrev {
					whg[j] += g * hv
				}
			}
		}
		// dh for the previous step: Whᵀ·dz.
		for j := 0; j < H; j++ {
			dhNext[j] = 0
		}
		if t > 0 {
			for r := 0; r < 4*H; r++ {
				g := dz[r]
				if g == 0 {
					continue
				}
				whr := l.Wh.Value[r*H : (r+1)*H]
				for j := 0; j < H; j++ {
					dhNext[j] += g * whr[j]
				}
			}
		}
		dcNext = dcPrev
		dxs[t] = dx
	}
	return dxs
}

// BiLSTM runs a forward and a backward LSTM over a sequence and
// concatenates their final hidden states into a 2·Hidden representation.
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM builds the two directions.
func NewBiLSTM(rng *rand.Rand, in, hidden int) *BiLSTM {
	return &BiLSTM{Fwd: NewLSTM(rng, in, hidden), Bwd: NewLSTM(rng, in, hidden)}
}

// Params returns both directions' learnables.
func (b *BiLSTM) Params() []*Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// OutDim is the representation width.
func (b *BiLSTM) OutDim() int { return b.Fwd.Hidden + b.Bwd.Hidden }

// BiTape caches both directions' forward passes.
type BiTape struct {
	fwd, bwd *LSTMTape
	seqLen   int
}

// Forward returns [h_fwd(final); h_bwd(final)] and the tape.
func (b *BiLSTM) Forward(seq [][]float64) ([]float64, *BiTape) {
	hF, tF := b.Fwd.Forward(seq)
	rev := make([][]float64, len(seq))
	for i := range seq {
		rev[i] = seq[len(seq)-1-i]
	}
	hB, tB := b.Bwd.Forward(rev)
	return tensor.Concat(hF, hB), &BiTape{fwd: tF, bwd: tB, seqLen: len(seq)}
}

// Backward takes dL/d[h_fwd;h_bwd] and accumulates gradients, returning
// dL/dx per original sequence position (both directions summed).
func (b *BiLSTM) Backward(tape *BiTape, dout []float64) [][]float64 {
	n := tape.seqLen
	if n == 0 {
		return nil
	}
	hF := b.Fwd.Hidden
	dhsF := make([][]float64, n)
	dhsF[n-1] = dout[:hF]
	dhsB := make([][]float64, n)
	dhsB[n-1] = dout[hF:]
	dxF := b.Fwd.Backward(tape.fwd, dhsF)
	dxB := b.Bwd.Backward(tape.bwd, dhsB)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		dx := make([]float64, len(dxF[i]))
		copy(dx, dxF[i])
		tensor.Axpy(1, dxB[n-1-i], dx)
		out[i] = dx
	}
	return out
}

func sigmoidVec(z []float64) []float64 {
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

func tanhVec(z []float64) []float64 {
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = math.Tanh(v)
	}
	return out
}
