package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cardnet/internal/tensor"
)

// numericalGrad perturbs each parameter value and measures the loss change,
// returning the central-difference gradient estimate for comparison with the
// analytic backward pass.
func numericalGrad(p *Param, loss func() float64) []float64 {
	const h = 1e-5
	grads := make([]float64, len(p.Value))
	for i := range p.Value {
		orig := p.Value[i]
		p.Value[i] = orig + h
		up := loss()
		p.Value[i] = orig - h
		down := loss()
		p.Value[i] = orig
		grads[i] = (up - down) / (2 * h)
	}
	return grads
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 3)
	copy(d.W.Value, []float64{1, 2, 3, 4, 5, 6}) // W = [[1,2],[3,4],[5,6]]
	copy(d.B.Value, []float64{0.5, -0.5, 1})
	x := tensor.FromRows([][]float64{{1, 1}})
	y := d.Forward(x, false)
	want := []float64{3.5, 6.5, 12}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-12 {
			t.Fatalf("y[%d]=%v want %v", i, y.Data[i], w)
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 4, 3)
	x := tensor.NewMatrix(5, 4)
	target := tensor.NewMatrix(5, 3)
	tensor.RandNormal(rng, x.Data, 0, 1)
	tensor.RandNormal(rng, target.Data, 0, 1)

	loss := func() float64 {
		y := d.Forward(x, true)
		return MSE(y.Data, target.Data)
	}
	// Analytic gradient.
	y := d.Forward(x, true)
	grad := tensor.NewMatrix(y.Rows, y.Cols)
	for i := range grad.Data {
		grad.Data[i] = MSEGrad(y.Data[i], target.Data[i], len(y.Data))
	}
	zeroGrads(d.Params())
	d.Backward(grad)

	for _, p := range d.Params() {
		num := numericalGrad(p, loss)
		for i := range num {
			if math.Abs(num[i]-p.Grad[i]) > 1e-6 {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, p.Grad[i], num[i])
			}
		}
	}
}

func TestDenseBackwardInputGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(rng, 3, 2)
	x := tensor.NewMatrix(2, 3)
	tensor.RandNormal(rng, x.Data, 0, 1)
	target := tensor.NewMatrix(2, 2)
	tensor.RandNormal(rng, target.Data, 0, 1)

	y := d.Forward(x, true)
	grad := tensor.NewMatrix(y.Rows, y.Cols)
	for i := range grad.Data {
		grad.Data[i] = MSEGrad(y.Data[i], target.Data[i], len(y.Data))
	}
	dx := d.Backward(grad)

	// Numerical input gradient.
	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := MSE(d.Forward(x, true).Data, target.Data)
		x.Data[i] = orig - h
		down := MSE(d.Forward(x, true).Data, target.Data)
		x.Data[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-dx.Data[i]) > 1e-6 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
}

func TestActivationsGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kind := range []ActKind{ReLU, ELU, Sigmoid, Tanh, Identity} {
		act := NewActivation(kind)
		x := tensor.NewMatrix(3, 4)
		tensor.RandNormal(rng, x.Data, 0.2, 1) // offset avoids ReLU kink at 0
		target := tensor.NewMatrix(3, 4)
		tensor.RandNormal(rng, target.Data, 0, 1)

		y := act.Forward(x, true)
		grad := tensor.NewMatrix(y.Rows, y.Cols)
		for i := range grad.Data {
			grad.Data[i] = MSEGrad(y.Data[i], target.Data[i], len(y.Data))
		}
		dx := act.Backward(grad)

		const h = 1e-6
		for i := range x.Data {
			if kind == ReLU && math.Abs(x.Data[i]) < 1e-3 {
				continue // non-differentiable point
			}
			orig := x.Data[i]
			x.Data[i] = orig + h
			up := MSE(act.Forward(x, true).Data, target.Data)
			x.Data[i] = orig - h
			down := MSE(act.Forward(x, true).Data, target.Data)
			x.Data[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-dx.Data[i]) > 1e-4 {
				t.Fatalf("kind %d dx[%d]: analytic %v numeric %v", kind, i, dx.Data[i], num)
			}
		}
	}
}

func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := NewMLP(rng, []int{2, 16, 1}, ReLU, Identity)
	opt := NewAdam(mlp.Params(), 0.01)

	// y = 2a + 3b + 1
	n := 200
	x := tensor.NewMatrix(n, 2)
	target := make([]float64, n)
	tensor.RandUniform(rng, x.Data, -1, 1)
	for i := 0; i < n; i++ {
		target[i] = 2*x.At(i, 0) + 3*x.At(i, 1) + 1
	}
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		y := mlp.Forward(x, true)
		grad := tensor.NewMatrix(n, 1)
		for i := 0; i < n; i++ {
			grad.Data[i] = MSEGrad(y.Data[i], target[i], n)
		}
		mlp.Backward(grad)
		opt.Step()
		last = MSE(y.Data, target)
	}
	if last > 0.01 {
		t.Fatalf("MLP failed to fit linear function, MSE=%v", last)
	}
}

func TestSequentialOutDim(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mlp := NewMLP(rng, []int{7, 5, 3}, ReLU, Identity)
	if got := mlp.OutDim(7); got != 3 {
		t.Fatalf("OutDim=%d want 3", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	logits := tensor.FromRows([][]float64{{1, 2, 3}, {-100, 0, 100}})
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		var s float64
		for _, v := range p.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	if p.At(1, 2) < 0.999 {
		t.Fatalf("softmax should saturate: %v", p.At(1, 2))
	}
}

func TestAdamReducesLossVsSGD(t *testing.T) {
	// Both optimizers must make progress on a quadratic bowl.
	for _, mk := range []func(ps []*Param) Optimizer{
		func(ps []*Param) Optimizer { return NewAdam(ps, 0.05) },
		func(ps []*Param) Optimizer { return NewSGD(ps, 0.05, 0.9) },
	} {
		p := newParam("x", 3)
		copy(p.Value, []float64{5, -4, 3})
		opt := mk([]*Param{p})
		for i := 0; i < 500; i++ {
			for j := range p.Value {
				p.Grad[j] = 2 * p.Value[j] // d/dx of x²
			}
			opt.Step()
		}
		if tensor.MaxAbs(p.Value) > 0.05 {
			t.Fatalf("optimizer failed to minimize bowl: %v", p.Value)
		}
	}
}

func TestZeroGrad(t *testing.T) {
	p := newParam("x", 2)
	p.Grad[0], p.Grad[1] = 1, 2
	NewAdam([]*Param{p}, 0.1).ZeroGrad()
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Fatalf("grads not zeroed: %v", p.Grad)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("x", 2)
	p.Grad[0], p.Grad[1] = 3, 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm=%v want 5", norm)
	}
	if math.Abs(tensor.L2Norm(p.Grad)-1) > 1e-9 {
		t.Fatalf("post-clip norm=%v want 1", tensor.L2Norm(p.Grad))
	}
	// Below-threshold gradients are untouched.
	p.Grad[0], p.Grad[1] = 0.1, 0.1
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad[0] != 0.1 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestLossesKnownValues(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Fatalf("MSE=%v", got)
	}
	if got := MSLE([]float64{0}, []float64{0}); got != 0 {
		t.Fatalf("MSLE zero=%v", got)
	}
	// MSLE clamps negative predictions to zero.
	if got, want := MSLE([]float64{-5}, []float64{0}), 0.0; got != want {
		t.Fatalf("MSLE clamp=%v", got)
	}
	got := MSLE([]float64{math.E - 1}, []float64{0})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("MSLE(e-1 vs 0)=%v want 1", got)
	}
	b := BCE([]float64{0.5, 0.5}, []float64{1, 0})
	if math.Abs(b-math.Log(2)) > 1e-9 {
		t.Fatalf("BCE=%v want ln2", b)
	}
}

func TestLossGradsMatchNumerics(t *testing.T) {
	const h = 1e-6
	cases := []struct {
		name string
		f    func(p float64) float64
		g    func(p float64) float64
	}{
		{"MSE", func(p float64) float64 { return MSE([]float64{p}, []float64{3}) },
			func(p float64) float64 { return MSEGrad(p, 3, 1) }},
		{"MSLE", func(p float64) float64 { return MSLE([]float64{p}, []float64{3}) },
			func(p float64) float64 { return MSLEGrad(p, 3, 1) }},
		{"BCE", func(p float64) float64 { return BCE([]float64{p}, []float64{1}) },
			func(p float64) float64 { return BCEGrad(p, 1, 1) }},
	}
	for _, c := range cases {
		for _, p := range []float64{0.3, 0.7, 2.5} {
			if c.name == "BCE" && p > 1 {
				continue
			}
			num := (c.f(p+h) - c.f(p-h)) / (2 * h)
			if math.Abs(num-c.g(p)) > 1e-4 {
				t.Fatalf("%s grad at %v: analytic %v numeric %v", c.name, p, c.g(p), num)
			}
		}
	}
}

func TestVAEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVAE(rng, 6, []int{8}, 3)
	x := tensor.NewMatrix(4, 6)
	for i := range x.Data {
		if rng.Float64() < 0.5 {
			x.Data[i] = 1
		}
	}
	// Freeze the noise so forward passes are reproducible for the numeric
	// gradient: use a fixed eps by running ForwardTrain once with a cloned
	// rng state each time.
	mkRng := func() *rand.Rand { return rand.New(rand.NewSource(99)) }

	loss := func() float64 {
		out := v.ForwardTrain(x, mkRng())
		recon, kl := v.Loss(out, x)
		return recon + kl
	}
	out := v.ForwardTrain(x, mkRng())
	zeroGrads(v.Params())
	v.Backward(out, x, 1, nil)

	for pi, p := range v.Params() {
		// Only spot-check a few entries per tensor to keep runtime modest.
		idxs := []int{0, len(p.Value) / 2, len(p.Value) - 1}
		for _, i := range idxs {
			orig := p.Value[i]
			const h = 1e-5
			p.Value[i] = orig + h
			up := loss()
			p.Value[i] = orig - h
			down := loss()
			p.Value[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-p.Grad[i]) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("vae param %d (%s) idx %d: analytic %v numeric %v", pi, p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func TestVAEMeanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := NewVAE(rng, 10, []int{12}, 4)
	x := tensor.NewMatrix(3, 10)
	for i := range x.Data {
		if rng.Float64() < 0.3 {
			x.Data[i] = 1
		}
	}
	a := v.Mean(x)
	b := v.Mean(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Mean must be deterministic")
		}
	}
	// Training-mode latents with different noise differ.
	z1 := v.ForwardTrain(x, rand.New(rand.NewSource(1))).Z
	z2 := v.ForwardTrain(x, rand.New(rand.NewSource(2))).Z
	same := true
	for i := range z1.Data {
		if z1.Data[i] != z2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reparameterized latents should differ across noise draws")
	}
}

func TestVAEPretrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Two prototype patterns with small flip noise.
	n, d := 120, 16
	data := tensor.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		proto := i % 2
		for j := 0; j < d; j++ {
			bit := 0.0
			if (j+proto)%2 == 0 {
				bit = 1
			}
			if rng.Float64() < 0.05 {
				bit = 1 - bit
			}
			row[j] = bit
		}
	}
	v := NewVAE(rng, d, []int{16, 8}, 4)
	first := v.Pretrain(data, 1, 32, 1e-3, rng)
	last := v.Pretrain(data, 30, 32, 1e-3, rng)
	if !(last < first) {
		t.Fatalf("VAE loss did not decrease: first=%v last=%v", first, last)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mlp := NewMLP(rng, []int{3, 5, 2}, ReLU, Identity)
	x := tensor.NewMatrix(2, 3)
	tensor.RandNormal(rng, x.Data, 0, 1)
	before := mlp.Forward(x, false).Clone()

	var buf bytes.Buffer
	if err := TakeSnapshot(mlp.Params()).Encode(&buf); err != nil {
		t.Fatal(err)
	}

	// Scramble, then restore.
	for _, p := range mlp.Params() {
		tensor.RandNormal(rng, p.Value, 0, 1)
	}
	snap, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Restore(mlp.Params()); err != nil {
		t.Fatal(err)
	}
	after := mlp.Forward(x, false)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("restored model differs")
		}
	}
}

func TestSnapshotShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewMLP(rng, []int{3, 5, 2}, ReLU, Identity)
	b := NewMLP(rng, []int{3, 6, 2}, ReLU, Identity)
	snap := TakeSnapshot(a.Params())
	if err := snap.Restore(b.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestParamBytesAndNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	mlp := NewMLP(rng, []int{4, 3}, ReLU, Identity)
	if got := NumParams(mlp.Params()); got != 4*3+3 {
		t.Fatalf("NumParams=%d", got)
	}
	if ParamBytes(mlp.Params()) <= 0 {
		t.Fatal("ParamBytes must be positive")
	}
}
