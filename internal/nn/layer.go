package nn

import (
	"math"
	"math/rand"

	"cardnet/internal/tensor"
)

// Param is one learnable parameter tensor, flattened. Grad has the same
// length as Value and is accumulated by Backward passes.
type Param struct {
	Name  string
	Value []float64
	Grad  []float64
}

// newParam allocates a named parameter of n values.
func newParam(name string, n int) *Param {
	return &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
}

// Layer is one differentiable block. Forward consumes a batch (rows =
// examples) and returns the output batch; Backward consumes dL/dOutput and
// returns dL/dInput, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(grad *tensor.Matrix) *tensor.Matrix
	Params() []*Param
	OutDim(inDim int) int
}

// Dense is a fully connected layer: y = x·Wᵀ + b with W of shape Out×In.
type Dense struct {
	In, Out int
	W, B    *Param

	// wm is a reusable Out×In matrix header over W.Value, valid for the
	// layer's lifetime because parameter updates and snapshot restores write
	// into the slice in place. Handing out &wm instead of a fresh header
	// keeps the inference forward allocation-free (a per-call header escapes
	// to the heap through the kernel call).
	wm tensor.Matrix

	x *tensor.Matrix // cached input
}

// NewDense returns a Dense layer with Glorot-uniform weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: newParam("W", in*out), B: newParam("b", out)}
	tensor.GlorotUniform(rng, d.W.Value, in, out)
	d.wm = tensor.Matrix{Rows: out, Cols: in, Data: d.W.Value}
	return d
}

func (d *Dense) weightMatrix() *tensor.Matrix {
	if d.wm.Data == nil {
		// Hand-assembled Dense (tests build these around borrowed Params):
		// fall back to a fresh header rather than caching one lazily, which
		// would race under concurrent inference.
		return &tensor.Matrix{Rows: d.Out, Cols: d.In, Data: d.W.Value}
	}
	return &d.wm
}

// Forward computes x·Wᵀ + b. The input is cached for Backward only in
// training mode; inference leaves the layer untouched (goroutine-safe).
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	return d.ForwardCtx(nil, x, train)
}

// ForwardCtx is Forward with the training cache written into c instead of
// the layer struct (nil c = legacy struct cache), allowing concurrent
// training shards to share one Dense instance.
func (d *Dense) ForwardCtx(c *Ctx, x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		if c == nil {
			d.x = x
		} else {
			c.put(d, x)
		}
	}
	y := tensor.PMatMulABT(x, d.weightMatrix(), nil)
	tensor.AddBias(y, d.B.Value)
	return y
}

// ForwardInto computes x·Wᵀ + b into out, which must be preallocated as
// x.Rows×d.Out and is fully overwritten. It records no activation cache, so
// it is inference-only; paired with Ctx.Scratch buffers it is what keeps the
// serving forward free of per-call allocations.
func (d *Dense) ForwardInto(x, out *tensor.Matrix) *tensor.Matrix {
	tensor.PMatMulABT(x, d.weightMatrix(), out)
	tensor.AddBias(out, d.B.Value)
	return out
}

// Backward accumulates dW = dYᵀ·X, dB = colsums(dY) and returns dX = dY·W.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	return d.BackwardCtx(nil, grad)
}

// BackwardCtx is Backward reading the activation cache from c and
// accumulating parameter gradients into c's buffers (nil c = legacy struct
// cache and direct Param.Grad accumulation).
func (d *Dense) BackwardCtx(c *Ctx, grad *tensor.Matrix) *tensor.Matrix {
	x := d.x
	gwData, gbData := d.W.Grad, d.B.Grad
	if c != nil {
		x = c.get(d).(*tensor.Matrix)
		gwData, gbData = c.GradOf(d.W), c.GradOf(d.B)
	}
	// dW (Out×In) += gradᵀ (Out×batch) · x (batch×In)
	gw := &tensor.Matrix{Rows: d.Out, Cols: d.In, Data: gwData}
	tensor.PMatMulATBAdd(grad, x, gw)
	for n := 0; n < grad.Rows; n++ {
		tensor.Axpy(1, grad.Row(n), gbData)
	}
	return tensor.PMatMul(grad, d.weightMatrix(), nil)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutDim reports the layer output width.
func (d *Dense) OutDim(int) int { return d.Out }

// Activation kinds supported by the framework.
type ActKind int

// Supported activation functions.
const (
	ReLU ActKind = iota
	ELU
	Sigmoid
	Tanh
	Identity
)

// Activation is an element-wise nonlinearity layer.
type Activation struct {
	Kind ActKind
	x, y *tensor.Matrix
}

// NewActivation returns an element-wise activation layer.
func NewActivation(kind ActKind) *Activation { return &Activation{Kind: kind} }

// Apply evaluates the activation on one scalar.
func (a *Activation) Apply(v float64) float64 {
	switch a.Kind {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case ELU:
		if v < 0 {
			return math.Exp(v) - 1
		}
		return v
	case Sigmoid:
		return 1 / (1 + math.Exp(-v))
	case Tanh:
		return math.Tanh(v)
	default:
		return v
	}
}

// deriv returns dy/dx given both the input x and output y values.
func (a *Activation) deriv(x, y float64) float64 {
	switch a.Kind {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case ELU:
		if x < 0 {
			return y + 1 // d/dx (e^x - 1) = e^x = y+1
		}
		return 1
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// actCache pairs the input/output matrices one training forward recorded.
type actCache struct {
	x, y *tensor.Matrix
}

// Forward applies the activation element-wise. Input/output are cached for
// Backward only in training mode; inference writes no layer state.
func (a *Activation) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	return a.ForwardCtx(nil, x, train)
}

// ForwardCtx is Forward with the training cache kept in c (nil c = legacy
// struct cache).
func (a *Activation) ForwardCtx(c *Ctx, x *tensor.Matrix, train bool) *tensor.Matrix {
	y := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = a.Apply(v)
	}
	if train {
		if c == nil {
			a.x = x
			a.y = y
		} else {
			c.put(a, actCache{x: x, y: y})
		}
	}
	return y
}

// Backward multiplies the upstream gradient by the activation derivative.
func (a *Activation) Backward(grad *tensor.Matrix) *tensor.Matrix {
	return a.BackwardCtx(nil, grad)
}

// BackwardCtx is Backward reading the forward cache from c.
func (a *Activation) BackwardCtx(c *Ctx, grad *tensor.Matrix) *tensor.Matrix {
	x, y := a.x, a.y
	if c != nil {
		cache := c.get(a).(actCache)
		x, y = cache.x, cache.y
	}
	out := tensor.NewMatrix(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		out.Data[i] = g * a.deriv(x.Data[i], y.Data[i])
	}
	return out
}

// Params reports no learnables.
func (a *Activation) Params() []*Param { return nil }

// OutDim reports the unchanged width.
func (a *Activation) OutDim(in int) int { return in }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential chains the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// NewMLP builds Dense+activation stacks: dims = [in, h1, ..., out]. The
// final layer gets outAct (use Identity for linear regression heads).
func NewMLP(rng *rand.Rand, dims []int, hidden, outAct ActKind) *Sequential {
	s := &Sequential{}
	for i := 0; i+1 < len(dims); i++ {
		s.Layers = append(s.Layers, NewDense(rng, dims[i], dims[i+1]))
		act := hidden
		if i+2 == len(dims) {
			act = outAct
		}
		if act != Identity {
			s.Layers = append(s.Layers, NewActivation(act))
		}
	}
	return s
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// ForwardCtx runs all layers in order through the context. Every layer must
// implement CtxLayer (all layers in this package do); sharing a Sequential
// across training shards is only safe through per-shard contexts.
func (s *Sequential) ForwardCtx(c *Ctx, x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.(CtxLayer).ForwardCtx(c, x, train)
	}
	return x
}

// BackwardCtx runs all layers in reverse through the context.
func (s *Sequential) BackwardCtx(c *Ctx, grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].(CtxLayer).BackwardCtx(c, grad)
	}
	return grad
}

// Params concatenates all layer parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutDim chains layer widths.
func (s *Sequential) OutDim(in int) int {
	for _, l := range s.Layers {
		in = l.OutDim(in)
	}
	return in
}

// Softmax computes a row-wise softmax of logits into a fresh matrix.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		o := out.Row(i)
		for j, v := range row {
			o[j] = math.Exp(v - m)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out
}
