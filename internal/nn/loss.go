package nn

import "math"

// MSLE returns the mean squared logarithmic error between predictions and
// targets: mean((log(1+ŷ) − log(1+y))²). The paper trains its regressors on
// MSLE because it approximates MAPE while compressing the long-tailed output
// space (Section 6.2). Negative predictions are clamped to 0 first.
func MSLE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := log1pClamped(p) - log1pClamped(target[i])
		s += d * d
	}
	return s / float64(len(pred))
}

// MSLEGrad returns dMSLE/dpred for one prediction/target pair, given the
// number of terms n in the mean.
func MSLEGrad(pred, target float64, n int) float64 {
	p := pred
	if p < 0 {
		p = 0
	}
	return 2 * (log1pClamped(pred) - log1pClamped(target)) / (1 + p) / float64(n)
}

func log1pClamped(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// MSE returns the mean squared error.
func MSE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MSEGrad returns dMSE/dpred for one pair.
func MSEGrad(pred, target float64, n int) float64 {
	return 2 * (pred - target) / float64(n)
}

// BCE returns the mean binary cross-entropy between probabilities p∈(0,1)
// and binary (or [0,1]) targets, summed over dimensions, averaged over rows.
func BCE(pred, target []float64) float64 {
	var s float64
	for i, p := range pred {
		p = clampProb(p)
		s += -target[i]*math.Log(p) - (1-target[i])*math.Log(1-p)
	}
	return s / float64(len(pred))
}

// BCEGrad returns dBCE/dpred for one element, given n total elements.
func BCEGrad(pred, target float64, n int) float64 {
	p := clampProb(pred)
	return (-target/p + (1-target)/(1-p)) / float64(n)
}

func clampProb(p float64) float64 {
	const eps = 1e-7
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
