package nn

import "math"

// Optimizer updates a fixed set of parameters from their accumulated
// gradients and zeroes the gradients afterwards.
type Optimizer interface {
	Step()
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	params   []*Param
	velocity [][]float64
}

// NewSGD binds an SGD optimizer to params.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	s.velocity = make([][]float64, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float64, len(p.Value))
	}
	return s
}

// Step applies one SGD update and clears gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.Value {
			v[j] = s.Momentum*v[j] - s.LR*p.Grad[j]
			p.Value[j] += v[j]
			p.Grad[j] = 0
		}
	}
}

// ZeroGrad clears all gradients without stepping.
func (s *SGD) ZeroGrad() { zeroGrads(s.params) }

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	params                []*Param
	m, v                  [][]float64
	t                     int
}

// NewAdam binds an Adam optimizer with the usual defaults (β1=0.9, β2=0.999).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value))
		a.v[i] = make([]float64, len(p.Value))
	}
	return a
}

// Step applies one Adam update and clears gradients.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Value {
			g := p.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Value[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.Grad[j] = 0
		}
	}
}

// ZeroGrad clears all gradients without stepping.
func (a *Adam) ZeroGrad() { zeroGrads(a.params) }

func zeroGrads(params []*Param) {
	for _, p := range params {
		for j := range p.Grad {
			p.Grad[j] = 0
		}
	}
}

// ClipGradNorm scales all gradients so that their global L2 norm is at most
// maxNorm. It returns the pre-clip norm. Training deep stacks on MSLE with
// long-tail labels occasionally produces spikes; clipping keeps Adam stable.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}
