// Package nn is a from-scratch feedforward neural-network framework: dense
// layers, common activations, Adam/SGD optimizers, regression and
// variational-auto-encoder losses, a bidirectional LSTM, and parameter /
// optimizer-state snapshots. It exists because the reproduced paper
// ("Monotonic Cardinality Estimation of Similarity Selection", SIGMOD 2020)
// trains FNN+VAE models (Sections 5–7) and no third-party DL framework is
// available; everything here uses only the standard library.
//
// The framework is batch-oriented: a batch is a tensor.Matrix with one row
// per example. In training mode (Forward's train=true) layers cache whatever
// Backward needs, so a layer instance must not be shared across concurrent
// training passes — data-parallel training shards instead carry a per-shard
// Ctx holding activation caches and gradient buffers. Inference mode
// (train=false) writes no layer state at all: concurrent Forward(x, false)
// calls on a shared instance are safe, which is what lets one loaded model
// serve many requests at once. Gradients accumulate into Param.Grad until
// the optimizer steps and zeroes them.
//
// Persistence is split into two halves so callers can compose them: Snapshot
// (io.go) flattens parameter values for model files, and AdamState captures
// the optimizer moments so internal/checkpoint can freeze and resume a
// training run bit-identically.
package nn
