package nn

import "cardnet/internal/tensor"

// Ctx is a per-goroutine forward/backward context: it owns the activation
// caches a training pass records for its backward pass, and the gradient
// buffers that backward accumulates into. The data-parallel trainer gives
// every minibatch shard its own Ctx so concurrent shards can share one set
// of layer objects (weights are only read) without sharing any mutable
// training state; after the shards join, their Ctx gradients are reduced
// into the real Param.Grad buffers in a fixed shard order.
//
// A nil *Ctx selects the legacy single-goroutine path: layers cache
// activations in their own struct fields and accumulate gradients directly
// into Param.Grad, exactly as before the parallel engine existed. The
// sequential trainer (Workers ≤ 1) passes nil, which is what keeps it
// bit-identical to the pre-parallel implementation.
type Ctx struct {
	caches  map[any]any
	grads   map[*Param][]float64
	scratch map[scratchKey]*tensor.Matrix
}

// NewCtx returns an empty context.
func NewCtx() *Ctx {
	return &Ctx{
		caches:  make(map[any]any),
		grads:   make(map[*Param][]float64),
		scratch: make(map[scratchKey]*tensor.Matrix),
	}
}

// put stores a layer's activation cache under the layer's identity.
func (c *Ctx) put(layer, cache any) { c.caches[layer] = cache }

// get fetches a layer's activation cache (nil if the layer never ran a
// training forward through this context).
func (c *Ctx) get(layer any) any { return c.caches[layer] }

// scratchKey identifies one Scratch buffer: the owning layer (or any other
// comparable identity) plus a tag distinguishing the buffers one owner needs.
// Scratch buffers live in their own typed map — separate from the activation
// caches — so lookups never box the key into an interface (the map[any]any
// would allocate per access, defeating the allocation-free forward).
type scratchKey struct {
	owner any
	tag   string
}

// Scratch returns a rows×cols matrix cached in the context under
// (owner, tag), allocating on first use and reusing (growing when needed) the
// backing array afterwards. The contents are NOT zeroed on reuse — callers
// must overwrite every element they read. On a nil context it degrades to a
// fresh allocation, preserving the legacy path's behavior.
//
// This is what makes steady-state inference forwards allocation-free: the
// serving layer pools contexts, and every transient the fused-encoder forward
// used to allocate per call (the scatter target z, the per-layer head outputs
// zj, backward's dzj) lives here instead.
func (c *Ctx) Scratch(owner any, tag string, rows, cols int) *tensor.Matrix {
	if c == nil {
		return tensor.NewMatrix(rows, cols)
	}
	key := scratchKey{owner: owner, tag: tag}
	if m, ok := c.scratch[key]; ok && cap(m.Data) >= rows*cols {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:rows*cols]
		return m
	}
	m := tensor.NewMatrix(rows, cols)
	c.scratch[key] = m
	return m
}

// GradOf returns the gradient buffer for p in this context, allocating a
// zeroed one on first use. On a nil context it returns p.Grad itself, so
// legacy callers keep accumulating in place.
func (c *Ctx) GradOf(p *Param) []float64 {
	if c == nil {
		return p.Grad
	}
	g, ok := c.grads[p]
	if !ok {
		g = make([]float64, len(p.Value))
		c.grads[p] = g
	}
	return g
}

// AddGradsInto adds this context's accumulated gradients into the real
// Param.Grad buffers for the given parameters. Callers reduce worker
// contexts in a fixed order (worker 0, 1, 2, …) so the summation order — and
// therefore every trained bit — depends only on the worker count, never on
// goroutine scheduling.
func (c *Ctx) AddGradsInto(params []*Param) {
	for _, p := range params {
		g, ok := c.grads[p]
		if !ok {
			continue
		}
		dst := p.Grad
		for i, v := range g {
			dst[i] += v
		}
	}
}

// CtxLayer is implemented by layers that can run training passes through an
// external context instead of their own struct caches, which is what makes
// one layer instance shareable across concurrent training shards. The legacy
// Forward/Backward methods are the nil-context special case.
type CtxLayer interface {
	Layer
	ForwardCtx(c *Ctx, x *tensor.Matrix, train bool) *tensor.Matrix
	BackwardCtx(c *Ctx, grad *tensor.Matrix) *tensor.Matrix
}
