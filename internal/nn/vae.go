package nn

import (
	"math"
	"math/rand"

	"cardnet/internal/tensor"
)

// VAE is a variational auto-encoder over binary input vectors. The CardNet
// encoder Γ concatenates the raw binary vector with the VAE latent code to
// obtain a dense, robust representation (paper Section 5.2.1): training uses
// the reparameterized sample z = μ + ε⊙exp(½·logσ²); inference uses the
// deterministic expected latent E[z] = μ so the overall estimator stays
// deterministic (required for the monotonicity guarantee of Lemma 2).
type VAE struct {
	InDim, Latent int

	Encoder    *Sequential // InDim → hidden stack
	MuHead     *Dense      // hidden → Latent
	LogVarHead *Dense      // hidden → Latent
	Decoder    *Sequential // Latent → InDim, sigmoid output
}

// VAEOutput carries the intermediate tensors of one training-mode forward
// pass, needed by Backward.
type VAEOutput struct {
	H      *tensor.Matrix // encoder trunk output
	Mu     *tensor.Matrix
	LogVar *tensor.Matrix
	Eps    *tensor.Matrix
	Z      *tensor.Matrix // reparameterized latent
	Recon  *tensor.Matrix // sigmoid reconstruction
}

// NewVAE builds a VAE with the given hidden stack (applied symmetrically to
// encoder and decoder) and latent width. The paper uses ELU activations for
// the VAE, in line with its reference implementation.
func NewVAE(rng *rand.Rand, inDim int, hidden []int, latent int) *VAE {
	encDims := append([]int{inDim}, hidden...)
	enc := NewMLP(rng, encDims, ELU, ELU)
	lastHidden := encDims[len(encDims)-1]

	decDims := []int{latent}
	for i := len(hidden) - 1; i >= 0; i-- {
		decDims = append(decDims, hidden[i])
	}
	decDims = append(decDims, inDim)
	dec := NewMLP(rng, decDims, ELU, Sigmoid)

	return &VAE{
		InDim:      inDim,
		Latent:     latent,
		Encoder:    enc,
		MuHead:     NewDense(rng, lastHidden, latent),
		LogVarHead: NewDense(rng, lastHidden, latent),
		Decoder:    dec,
	}
}

// Params returns all learnable parameters.
func (v *VAE) Params() []*Param {
	ps := v.Encoder.Params()
	ps = append(ps, v.MuHead.Params()...)
	ps = append(ps, v.LogVarHead.Params()...)
	ps = append(ps, v.Decoder.Params()...)
	return ps
}

// ForwardTrain runs the stochastic (reparameterized) forward pass.
func (v *VAE) ForwardTrain(x *tensor.Matrix, rng *rand.Rand) *VAEOutput {
	h := v.Encoder.Forward(x, true)
	mu := v.MuHead.Forward(h, true)
	logvar := v.LogVarHead.Forward(h, true)
	eps := tensor.NewMatrix(mu.Rows, mu.Cols)
	for i := range eps.Data {
		eps.Data[i] = rng.NormFloat64()
	}
	z := tensor.NewMatrix(mu.Rows, mu.Cols)
	for i := range z.Data {
		z.Data[i] = mu.Data[i] + eps.Data[i]*math.Exp(0.5*logvar.Data[i])
	}
	recon := v.Decoder.Forward(z, true)
	return &VAEOutput{H: h, Mu: mu, LogVar: logvar, Eps: eps, Z: z, Recon: recon}
}

// Mean returns the deterministic latent E[z] = μ for inference.
func (v *VAE) Mean(x *tensor.Matrix) *tensor.Matrix {
	h := v.Encoder.Forward(x, false)
	return v.MuHead.Forward(h, false)
}

// Loss returns the reconstruction (BCE) and KL components of the ELBO loss,
// both averaged over the batch.
func (v *VAE) Loss(out *VAEOutput, x *tensor.Matrix) (recon, kl float64) {
	recon = BCE(out.Recon.Data, x.Data) * float64(x.Cols) // sum over dims, mean over rows
	for i := range out.Mu.Data {
		mu, lv := out.Mu.Data[i], out.LogVar.Data[i]
		kl += -0.5 * (1 + lv - mu*mu - math.Exp(lv))
	}
	kl /= float64(x.Rows)
	return recon, kl
}

// Backward accumulates gradients of scale·(BCE + KL) plus an optional
// external gradient dzExtra on the latent z (used when a downstream
// regression loss flows back into the VAE during joint training). dzExtra
// may be nil. Gradients land in the VAE parameters; the gradient w.r.t. the
// binary input is discarded (inputs are data, not learnables).
func (v *VAE) Backward(out *VAEOutput, x *tensor.Matrix, scale float64, dzExtra *tensor.Matrix) {
	batch := float64(x.Rows)

	dz := tensor.NewMatrix(out.Z.Rows, out.Z.Cols)
	if scale != 0 {
		// Reconstruction path: dBCE/dRecon, backward through decoder to z.
		dRecon := tensor.NewMatrix(out.Recon.Rows, out.Recon.Cols)
		n := len(out.Recon.Data)
		for i := range dRecon.Data {
			// BCE above is sum-over-dims, mean-over-rows: per-element grad is
			// elementwise BCE grad times cols (undo the per-element mean).
			dRecon.Data[i] = scale * BCEGrad(out.Recon.Data[i], x.Data[i], n) * float64(x.Cols)
		}
		dz = v.Decoder.Backward(dRecon)
	}
	if dzExtra != nil {
		for i := range dz.Data {
			dz.Data[i] += dzExtra.Data[i]
		}
	}

	// Reparameterization: z = μ + ε·exp(½·logσ²).
	dMu := tensor.NewMatrix(out.Mu.Rows, out.Mu.Cols)
	dLogVar := tensor.NewMatrix(out.Mu.Rows, out.Mu.Cols)
	for i := range dz.Data {
		std := math.Exp(0.5 * out.LogVar.Data[i])
		dMu.Data[i] = dz.Data[i]
		dLogVar.Data[i] = dz.Data[i] * out.Eps.Data[i] * 0.5 * std
	}
	if scale != 0 {
		// KL term: d/dμ = μ/batch, d/dlogσ² = ½(exp(logσ²)−1)/batch.
		for i := range dMu.Data {
			dMu.Data[i] += scale * out.Mu.Data[i] / batch
			dLogVar.Data[i] += scale * 0.5 * (math.Exp(out.LogVar.Data[i]) - 1) / batch
		}
	}

	dh1 := v.MuHead.Backward(dMu)
	dh2 := v.LogVarHead.Backward(dLogVar)
	for i := range dh1.Data {
		dh1.Data[i] += dh2.Data[i]
	}
	v.Encoder.Backward(dh1)
}

// Pretrain trains the VAE unsupervised on the given binary data for the
// requested epochs (the paper pretrains its VAE for 100 epochs before the
// regression model trains). It returns the final epoch's mean loss.
func (v *VAE) Pretrain(data *tensor.Matrix, epochs, batchSize int, lr float64, rng *rand.Rand) float64 {
	opt := NewAdam(v.Params(), lr)
	perm := make([]int, data.Rows)
	var last float64
	for e := 0; e < epochs; e++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var total float64
		var batches int
		for start := 0; start < data.Rows; start += batchSize {
			end := start + batchSize
			if end > data.Rows {
				end = data.Rows
			}
			xb := tensor.NewMatrix(end-start, data.Cols)
			for r := start; r < end; r++ {
				copy(xb.Row(r-start), data.Row(perm[r]))
			}
			out := v.ForwardTrain(xb, rng)
			recon, kl := v.Loss(out, xb)
			total += recon + kl
			batches++
			v.Backward(out, xb, 1, nil)
			ClipGradNorm(v.Params(), 5)
			opt.Step()
		}
		if batches > 0 {
			last = total / float64(batches)
		}
	}
	return last
}
