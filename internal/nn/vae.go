package nn

import (
	"math"
	"math/rand"

	"cardnet/internal/tensor"
)

// VAE is a variational auto-encoder over binary input vectors. The CardNet
// encoder Γ concatenates the raw binary vector with the VAE latent code to
// obtain a dense, robust representation (paper Section 5.2.1): training uses
// the reparameterized sample z = μ + ε⊙exp(½·logσ²); inference uses the
// deterministic expected latent E[z] = μ so the overall estimator stays
// deterministic (required for the monotonicity guarantee of Lemma 2).
type VAE struct {
	InDim, Latent int

	Encoder    *Sequential // InDim → hidden stack
	MuHead     *Dense      // hidden → Latent
	LogVarHead *Dense      // hidden → Latent
	Decoder    *Sequential // Latent → InDim, sigmoid output
}

// VAEOutput carries the intermediate tensors of one training-mode forward
// pass, needed by Backward.
type VAEOutput struct {
	H      *tensor.Matrix // encoder trunk output
	Mu     *tensor.Matrix
	LogVar *tensor.Matrix
	Eps    *tensor.Matrix
	Z      *tensor.Matrix // reparameterized latent
	Recon  *tensor.Matrix // sigmoid reconstruction
}

// NewVAE builds a VAE with the given hidden stack (applied symmetrically to
// encoder and decoder) and latent width. The paper uses ELU activations for
// the VAE, in line with its reference implementation.
func NewVAE(rng *rand.Rand, inDim int, hidden []int, latent int) *VAE {
	encDims := append([]int{inDim}, hidden...)
	enc := NewMLP(rng, encDims, ELU, ELU)
	lastHidden := encDims[len(encDims)-1]

	decDims := []int{latent}
	for i := len(hidden) - 1; i >= 0; i-- {
		decDims = append(decDims, hidden[i])
	}
	decDims = append(decDims, inDim)
	dec := NewMLP(rng, decDims, ELU, Sigmoid)

	return &VAE{
		InDim:      inDim,
		Latent:     latent,
		Encoder:    enc,
		MuHead:     NewDense(rng, lastHidden, latent),
		LogVarHead: NewDense(rng, lastHidden, latent),
		Decoder:    dec,
	}
}

// Params returns all learnable parameters.
func (v *VAE) Params() []*Param {
	ps := v.Encoder.Params()
	ps = append(ps, v.MuHead.Params()...)
	ps = append(ps, v.LogVarHead.Params()...)
	ps = append(ps, v.Decoder.Params()...)
	return ps
}

// ForwardTrain runs the stochastic (reparameterized) forward pass.
func (v *VAE) ForwardTrain(x *tensor.Matrix, rng *rand.Rand) *VAEOutput {
	return v.ForwardTrainCtx(nil, x, rng)
}

// ForwardTrainCtx is ForwardTrain with activation caches kept in c (nil c =
// legacy struct caches), so concurrent training shards can share one VAE.
// Each shard must bring its own rng: the reparameterization noise is the one
// stochastic input of the whole model, and per-shard seeded streams are what
// keep a parallel run reproducible for a fixed worker count.
func (v *VAE) ForwardTrainCtx(c *Ctx, x *tensor.Matrix, rng *rand.Rand) *VAEOutput {
	h := v.Encoder.ForwardCtx(c, x, true)
	mu := v.MuHead.ForwardCtx(c, h, true)
	logvar := v.LogVarHead.ForwardCtx(c, h, true)
	eps := tensor.NewMatrix(mu.Rows, mu.Cols)
	for i := range eps.Data {
		eps.Data[i] = rng.NormFloat64()
	}
	z := tensor.NewMatrix(mu.Rows, mu.Cols)
	for i := range z.Data {
		z.Data[i] = mu.Data[i] + eps.Data[i]*math.Exp(0.5*logvar.Data[i])
	}
	recon := v.Decoder.ForwardCtx(c, z, true)
	return &VAEOutput{H: h, Mu: mu, LogVar: logvar, Eps: eps, Z: z, Recon: recon}
}

// Mean returns the deterministic latent E[z] = μ for inference.
func (v *VAE) Mean(x *tensor.Matrix) *tensor.Matrix {
	h := v.Encoder.Forward(x, false)
	return v.MuHead.Forward(h, false)
}

// Loss returns the reconstruction (BCE) and KL components of the ELBO loss,
// both averaged over the batch.
func (v *VAE) Loss(out *VAEOutput, x *tensor.Matrix) (recon, kl float64) {
	recon = BCE(out.Recon.Data, x.Data) * float64(x.Cols) // sum over dims, mean over rows
	for i := range out.Mu.Data {
		mu, lv := out.Mu.Data[i], out.LogVar.Data[i]
		kl += -0.5 * (1 + lv - mu*mu - math.Exp(lv))
	}
	kl /= float64(x.Rows)
	return recon, kl
}

// LossSums returns the unnormalized BCE and KL sums of one forward pass.
// Unlike Loss, nothing is averaged, so minibatch shards can report partial
// sums that the caller combines and divides by the global batch size.
func (v *VAE) LossSums(out *VAEOutput, x *tensor.Matrix) (bceSum, klSum float64) {
	for i, p := range out.Recon.Data {
		p = clampProb(p)
		t := x.Data[i]
		bceSum += -t*math.Log(p) - (1-t)*math.Log(1-p)
	}
	for i := range out.Mu.Data {
		mu, lv := out.Mu.Data[i], out.LogVar.Data[i]
		klSum += -0.5 * (1 + lv - mu*mu - math.Exp(lv))
	}
	return bceSum, klSum
}

// Backward accumulates gradients of scale·(BCE + KL) plus an optional
// external gradient dzExtra on the latent z (used when a downstream
// regression loss flows back into the VAE during joint training). dzExtra
// may be nil. Gradients land in the VAE parameters; the gradient w.r.t. the
// binary input is discarded (inputs are data, not learnables).
func (v *VAE) Backward(out *VAEOutput, x *tensor.Matrix, scale float64, dzExtra *tensor.Matrix) {
	v.BackwardCtx(nil, out, x, scale, dzExtra, x.Rows)
}

// BackwardCtx is Backward through a context (nil c = legacy path), with the
// loss normalization pinned to normRows instead of x.Rows: a shard of a
// larger minibatch passes the global batch size so its partial gradients
// add up to exactly one batch-mean gradient across shards.
func (v *VAE) BackwardCtx(c *Ctx, out *VAEOutput, x *tensor.Matrix, scale float64, dzExtra *tensor.Matrix, normRows int) {
	batch := float64(normRows)

	dz := tensor.NewMatrix(out.Z.Rows, out.Z.Cols)
	if scale != 0 {
		// Reconstruction path: dBCE/dRecon, backward through decoder to z.
		dRecon := tensor.NewMatrix(out.Recon.Rows, out.Recon.Cols)
		n := normRows * x.Cols
		for i := range dRecon.Data {
			// BCE above is sum-over-dims, mean-over-rows: per-element grad is
			// elementwise BCE grad times cols (undo the per-element mean).
			dRecon.Data[i] = scale * BCEGrad(out.Recon.Data[i], x.Data[i], n) * float64(x.Cols)
		}
		dz = v.Decoder.BackwardCtx(c, dRecon)
	}
	if dzExtra != nil {
		for i := range dz.Data {
			dz.Data[i] += dzExtra.Data[i]
		}
	}

	// Reparameterization: z = μ + ε·exp(½·logσ²).
	dMu := tensor.NewMatrix(out.Mu.Rows, out.Mu.Cols)
	dLogVar := tensor.NewMatrix(out.Mu.Rows, out.Mu.Cols)
	for i := range dz.Data {
		std := math.Exp(0.5 * out.LogVar.Data[i])
		dMu.Data[i] = dz.Data[i]
		dLogVar.Data[i] = dz.Data[i] * out.Eps.Data[i] * 0.5 * std
	}
	if scale != 0 {
		// KL term: d/dμ = μ/batch, d/dlogσ² = ½(exp(logσ²)−1)/batch.
		for i := range dMu.Data {
			dMu.Data[i] += scale * out.Mu.Data[i] / batch
			dLogVar.Data[i] += scale * 0.5 * (math.Exp(out.LogVar.Data[i]) - 1) / batch
		}
	}

	dh1 := v.MuHead.BackwardCtx(c, dMu)
	dh2 := v.LogVarHead.BackwardCtx(c, dLogVar)
	for i := range dh1.Data {
		dh1.Data[i] += dh2.Data[i]
	}
	v.Encoder.BackwardCtx(c, dh1)
}

// Pretrain trains the VAE unsupervised on the given binary data for the
// requested epochs (the paper pretrains its VAE for 100 epochs before the
// regression model trains). It returns the final epoch's mean loss.
func (v *VAE) Pretrain(data *tensor.Matrix, epochs, batchSize int, lr float64, rng *rand.Rand) float64 {
	return v.PretrainWorkers(data, epochs, batchSize, lr, rng, 1)
}

// PretrainWorkers is Pretrain with each minibatch's forward/backward split
// across `workers` data-parallel shards on the shared worker pool. workers ≤
// 1 is the sequential path, bit-identical to the pre-parallel Pretrain; a
// fixed workers > 1 is reproducible (per-shard noise streams are seeded from
// the parent rng in shard order, and shard gradients are reduced in shard
// order), but changing the worker count changes which noise each example
// sees, so different counts are different — equally valid — training runs.
func (v *VAE) PretrainWorkers(data *tensor.Matrix, epochs, batchSize int, lr float64, rng *rand.Rand, workers int) float64 {
	opt := NewAdam(v.Params(), lr)
	params := v.Params()
	perm := make([]int, data.Rows)
	if batchSize > data.Rows {
		batchSize = data.Rows
	}
	xb := tensor.NewMatrix(batchSize, data.Cols) // reused across steps
	seeds := make([]int64, workers)
	var last float64
	for e := 0; e < epochs; e++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var total float64
		var batches int
		for start := 0; start < data.Rows; start += batchSize {
			end := start + batchSize
			if end > data.Rows {
				end = data.Rows
			}
			n := end - start
			xv := xb.RowSlice(0, n)
			for r := start; r < end; r++ {
				copy(xv.Row(r-start), data.Row(perm[r]))
			}
			batches++
			if workers <= 1 {
				out := v.ForwardTrain(xv, rng)
				recon, kl := v.Loss(out, xv)
				total += recon + kl
				v.Backward(out, xv, 1, nil)
			} else {
				// One seed per shard, drawn in shard order from the parent
				// stream, so the epoch's noise is a pure function of
				// (seed, worker count).
				for k := range seeds {
					seeds[k] = rng.Int63()
				}
				bounds := tensor.ShardBounds(n, workers)
				ctxs := make([]*Ctx, workers)
				sums := make([]float64, workers)
				tensor.RunParts(workers, func(k int) {
					lo, hi := bounds[k], bounds[k+1]
					if lo == hi {
						return
					}
					ctx := NewCtx()
					ctxs[k] = ctx
					srng := rand.New(rand.NewSource(seeds[k]))
					xs := xv.RowSlice(lo, hi)
					out := v.ForwardTrainCtx(ctx, xs, srng)
					bce, kl := v.LossSums(out, xs)
					sums[k] = bce + kl
					v.BackwardCtx(ctx, out, xs, 1, nil, n)
				})
				// Ordered reduction: shard k's gradients land before shard
				// k+1's, independent of goroutine scheduling.
				for _, ctx := range ctxs {
					if ctx != nil {
						ctx.AddGradsInto(params)
					}
				}
				var sum float64
				for _, s := range sums {
					sum += s
				}
				total += sum / float64(n)
			}
			ClipGradNorm(params, 5)
			opt.Step()
		}
		if batches > 0 {
			last = total / float64(batches)
		}
	}
	return last
}
