package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot is a flattened copy of a model's parameter values in Params()
// order. It is the interchange format for gob-based model persistence: the
// caller rebuilds the architecture from its own config and then restores the
// parameter values.
type Snapshot struct {
	Names  []string
	Values [][]float64
}

// TakeSnapshot copies the current values of params.
func TakeSnapshot(params []*Param) *Snapshot {
	s := &Snapshot{}
	for _, p := range params {
		v := make([]float64, len(p.Value))
		copy(v, p.Value)
		s.Names = append(s.Names, p.Name)
		s.Values = append(s.Values, v)
	}
	return s
}

// Restore writes snapshot values back into params. It errors when the
// shapes do not line up, which indicates an architecture mismatch.
func (s *Snapshot) Restore(params []*Param) error {
	if len(params) != len(s.Values) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(s.Values), len(params))
	}
	for i, p := range params {
		if len(p.Value) != len(s.Values[i]) {
			return fmt.Errorf("nn: param %d (%s) has %d values, snapshot has %d",
				i, p.Name, len(p.Value), len(s.Values[i]))
		}
		copy(p.Value, s.Values[i])
	}
	return nil
}

// Encode writes the snapshot with gob.
func (s *Snapshot) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(s) }

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// AdamState is a deep copy of an Adam optimizer's mutable state — the step
// counter and both moment vectors — in the order of the bound parameters. It
// is the optimizer half of a training checkpoint: restoring parameter values
// alone would reset the moments and bias correction, so a resumed run would
// diverge from the uninterrupted one on the very first step.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State captures the optimizer's current moment vectors and step counter.
// The copy is deep, so the caller may retain it across further Step calls.
func (a *Adam) State() *AdamState {
	st := &AdamState{T: a.t,
		M: make([][]float64, len(a.m)),
		V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i]...)
		st.V[i] = append([]float64(nil), a.v[i]...)
	}
	return st
}

// SetState restores moments captured by State into an optimizer bound to a
// parameter set of the same shape. It errors on any mismatch, which indicates
// the checkpoint belongs to a different architecture.
func (a *Adam) SetState(st *AdamState) error {
	if st == nil {
		return fmt.Errorf("nn: nil Adam state")
	}
	if len(st.M) != len(a.params) || len(st.V) != len(a.params) {
		return fmt.Errorf("nn: Adam state has %d/%d moment vectors, optimizer binds %d params",
			len(st.M), len(st.V), len(a.params))
	}
	for i, p := range a.params {
		if len(st.M[i]) != len(p.Value) || len(st.V[i]) != len(p.Value) {
			return fmt.Errorf("nn: Adam state moments %d (%s) have %d/%d values, param has %d",
				i, p.Name, len(st.M[i]), len(st.V[i]), len(p.Value))
		}
	}
	a.t = st.T
	for i := range a.params {
		copy(a.m[i], st.M[i])
		copy(a.v[i], st.V[i])
	}
	return nil
}

// ParamBytes returns the serialized size in bytes of the given parameters,
// used to report model sizes (paper Table 9).
func ParamBytes(params []*Param) int {
	var buf bytes.Buffer
	if err := TakeSnapshot(params).Encode(&buf); err != nil {
		return 0
	}
	return buf.Len()
}

// NumParams returns the total scalar parameter count.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Value)
	}
	return n
}
