package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot is a flattened copy of a model's parameter values in Params()
// order. It is the interchange format for gob-based model persistence: the
// caller rebuilds the architecture from its own config and then restores the
// parameter values.
type Snapshot struct {
	Names  []string
	Values [][]float64
}

// TakeSnapshot copies the current values of params.
func TakeSnapshot(params []*Param) *Snapshot {
	s := &Snapshot{}
	for _, p := range params {
		v := make([]float64, len(p.Value))
		copy(v, p.Value)
		s.Names = append(s.Names, p.Name)
		s.Values = append(s.Values, v)
	}
	return s
}

// Restore writes snapshot values back into params. It errors when the
// shapes do not line up, which indicates an architecture mismatch.
func (s *Snapshot) Restore(params []*Param) error {
	if len(params) != len(s.Values) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(s.Values), len(params))
	}
	for i, p := range params {
		if len(p.Value) != len(s.Values[i]) {
			return fmt.Errorf("nn: param %d (%s) has %d values, snapshot has %d",
				i, p.Name, len(p.Value), len(s.Values[i]))
		}
		copy(p.Value, s.Values[i])
	}
	return nil
}

// Encode writes the snapshot with gob.
func (s *Snapshot) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(s) }

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParamBytes returns the serialized size in bytes of the given parameters,
// used to report model sizes (paper Table 9).
func ParamBytes(params []*Param) int {
	var buf bytes.Buffer
	if err := TakeSnapshot(params).Encode(&buf); err != nil {
		return 0
	}
	return buf.Len()
}

// NumParams returns the total scalar parameter count.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Value)
	}
	return n
}
