package nn

import (
	"math"
	"math/rand"
	"testing"

	"cardnet/internal/tensor"
)

func randSeq(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestLSTMForwardShapeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(rng, 3, 5)
	seq := randSeq(rng, 4, 3)
	h1, tape := l.Forward(seq)
	h2, _ := l.Forward(seq)
	if len(h1) != 5 || tape.Len() != 4 {
		t.Fatalf("shapes wrong: |h|=%d steps=%d", len(h1), tape.Len())
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("forward must be deterministic")
		}
	}
	if len(tape.H(2)) != 5 {
		t.Fatal("tape hidden state wrong size")
	}
}

func TestLSTMEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(rng, 3, 4)
	h, tape := l.Forward(nil)
	if len(h) != 4 || tape.Len() != 0 {
		t.Fatal("empty sequence must give zero-length tape and zero state")
	}
	for _, v := range h {
		if v != 0 {
			t.Fatal("empty-sequence hidden state must be zero")
		}
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, 2, 3)
	for i := l.Hidden; i < 2*l.Hidden; i++ {
		if l.B.Value[i] != 1 {
			t.Fatal("forget bias must initialize to 1")
		}
	}
	if l.B.Value[0] != 0 {
		t.Fatal("other biases must initialize to 0")
	}
}

// Gradient check of the full BPTT against central differences on a loss
// attached to the final hidden state.
func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(rng, 3, 4)
	seq := randSeq(rng, 5, 3)
	target := make([]float64, 4)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		h, _ := l.Forward(seq)
		return MSE(h, target)
	}
	h, tape := l.Forward(seq)
	dh := make([]float64, 4)
	for i := range dh {
		dh[i] = MSEGrad(h[i], target[i], len(h))
	}
	zeroGrads(l.Params())
	dhs := make([][]float64, tape.Len())
	dhs[tape.Len()-1] = dh
	dxs := l.Backward(tape, dhs)

	const eps = 1e-5
	for _, p := range l.Params() {
		for _, idx := range []int{0, len(p.Value) / 3, len(p.Value) - 1} {
			orig := p.Value[idx]
			p.Value[idx] = orig + eps
			up := loss()
			p.Value[idx] = orig - eps
			down := loss()
			p.Value[idx] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.Grad[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, idx, p.Grad[idx], num)
			}
		}
	}
	// Input gradient check on one element.
	orig := seq[1][2]
	seq[1][2] = orig + eps
	up := loss()
	seq[1][2] = orig - eps
	down := loss()
	seq[1][2] = orig
	num := (up - down) / (2 * eps)
	if math.Abs(num-dxs[1][2]) > 1e-4*(1+math.Abs(num)) {
		t.Fatalf("dx[1][2]: analytic %v numeric %v", dxs[1][2], num)
	}
}

func TestBiLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBiLSTM(rng, 2, 3)
	if b.OutDim() != 6 {
		t.Fatalf("OutDim=%d", b.OutDim())
	}
	seq := randSeq(rng, 4, 2)
	target := make([]float64, 6)
	for i := range target {
		target[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		h, _ := b.Forward(seq)
		return MSE(h, target)
	}
	h, tape := b.Forward(seq)
	dh := make([]float64, 6)
	for i := range dh {
		dh[i] = MSEGrad(h[i], target[i], len(h))
	}
	zeroGrads(b.Params())
	dxs := b.Backward(tape, dh)

	const eps = 1e-5
	for pi, p := range b.Params() {
		idx := len(p.Value) / 2
		orig := p.Value[idx]
		p.Value[idx] = orig + eps
		up := loss()
		p.Value[idx] = orig - eps
		down := loss()
		p.Value[idx] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-p.Grad[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param %d %s[%d]: analytic %v numeric %v", pi, p.Name, idx, p.Grad[idx], num)
		}
	}
	// Input gradients combine both directions.
	orig := seq[2][0]
	seq[2][0] = orig + eps
	up := loss()
	seq[2][0] = orig - eps
	down := loss()
	seq[2][0] = orig
	num := (up - down) / (2 * eps)
	if math.Abs(num-dxs[2][0]) > 1e-4*(1+math.Abs(num)) {
		t.Fatalf("dx: analytic %v numeric %v", dxs[2][0], num)
	}
}

func TestBiLSTMEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBiLSTM(rng, 2, 3)
	h, tape := b.Forward(nil)
	if len(h) != 6 {
		t.Fatal("empty-sequence representation must still have OutDim entries")
	}
	if out := b.Backward(tape, make([]float64, 6)); out != nil {
		t.Fatal("backward on empty tape must be nil")
	}
}

// An LSTM must be able to learn a simple order-sensitive task that a
// bag-of-inputs model cannot: predict whether the larger input came last.
func TestLSTMLearnsOrderSensitiveTask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLSTM(rng, 1, 8)
	head := NewDense(rng, 8, 1)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(params, 0.01)

	sample := func() ([][]float64, float64) {
		a, b := rng.Float64(), rng.Float64()
		seq := [][]float64{{a}, {b}}
		if b > a {
			return seq, 1
		}
		return seq, 0
	}
	var lastLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		seq, y := sample()
		h, tape := l.Forward(seq)
		hm := &Dense{In: 8, Out: 1, W: head.W, B: head.B}
		pred := hm.Forward(matFromVec(h), true).Data[0]
		lastLoss = (pred - y) * (pred - y)
		dh := hm.Backward(matFromVec([]float64{2 * (pred - y)}))
		dhs := make([][]float64, tape.Len())
		dhs[tape.Len()-1] = dh.Row(0)
		l.Backward(tape, dhs)
		opt.Step()
	}
	// Evaluate accuracy on fresh samples.
	correct := 0
	for i := 0; i < 200; i++ {
		seq, y := sample()
		h, _ := l.Forward(seq)
		pred := head.Forward(matFromVec(h), false).Data[0]
		if (pred > 0.5) == (y == 1) {
			correct++
		}
	}
	if correct < 170 {
		t.Fatalf("LSTM failed order task: %d/200 correct (last loss %v)", correct, lastLoss)
	}
}

// matFromVec wraps a vector as a 1×n matrix.
func matFromVec(v []float64) *tensor.Matrix {
	return &tensor.Matrix{Rows: 1, Cols: len(v), Data: v}
}
