// Package checkpoint provides durable, crash-safe persistence for training
// runs and published models.
//
// Training in this system can take hours at paper scale (Section 9.1.3's
// configuration trains for 800 epochs), so the trainer must survive
// interruption: internal/core captures complete resumable state at every
// epoch boundary (core.TrainerState — weights, Adam moments, dynamic ω, RNG
// stream position, counters), and this package makes that state durable.
//
// Three layers:
//
//   - File framing (WriteFileAtomic / ReadFile): every checkpoint is a single
//     file written to a temporary name in the destination directory, fsynced,
//     atomically renamed into place, and the directory fsynced — a crash at
//     any point leaves either the previous file or the new one, never a torn
//     mix. Files carry a fixed header (magic, format version, a 4-byte kind
//     tag, payload length, CRC32) so truncation and corruption are detected
//     on read and reported as ErrCorrupt rather than decoded into garbage.
//
//   - The Store: a directory of numbered checkpoints (ckpt-00000001.ckpt, …)
//     with retained-N rotation — each Save prunes the oldest files beyond the
//     retention budget, and LoadLatest walks backward past corrupt or
//     unreadable files to the newest checkpoint that verifies, so a crash
//     mid-write (or a bad disk block) costs at most one checkpoint interval,
//     not the run.
//
//   - The Checkpointer: a core.TrainHook consumer that persists the trainer
//     state every N epochs and on interruption. Its StopRequested method is
//     the Config.Stop half of graceful shutdown: cmd/cardnet points SIGTERM
//     at RequestStop, the trainer finishes the current epoch, the hook
//     flushes that exact epoch's state, and `cardnet train -resume` continues
//     bit-identically (locked by the kill-and-resume tests here and in
//     internal/core).
//
// Published models go through the same framed atomic writer (SaveModel /
// LoadModel), so the serving loader (serve startup and POST /admin/reload)
// can never observe a torn model file: the rename either happened or it did
// not, and a truncated copy fails the CRC instead of loading silently.
// LoadModel still accepts the bare gob files produced by earlier versions of
// this repo.
package checkpoint
