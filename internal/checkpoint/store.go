package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A Store is a directory of numbered trainer checkpoints with retained-N
// rotation. File names are ckpt-%08d.ckpt; the sequence number increases
// monotonically across Saves (it continues from the highest existing file, so
// reopening a store never reuses a number). Temporary files from in-flight or
// crashed writes start with "." and are ignored by scans.
type Store struct {
	dir    string
	retain int
	next   uint64
}

const ckptExt = ".ckpt"

// OpenStore opens (creating if needed) a checkpoint directory retaining at
// most retain files; retain < 1 is treated as 1.
func OpenStore(dir string, retain int) (*Store, error) {
	if retain < 1 {
		retain = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	s := &Store{dir: dir, retain: retain}
	seqs, err := s.Seqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.next = seqs[len(seqs)-1] + 1
	} else {
		s.next = 1
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path returns the file name for a sequence number.
func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d%s", seq, ckptExt))
}

// Seqs lists the sequence numbers present in the store, ascending. Files that
// do not match the naming scheme (including "."-prefixed temporaries) are
// ignored.
func (s *Store) Seqs() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan store: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%08d"+ckptExt, &seq); err != nil {
			continue
		}
		if e.Name() != fmt.Sprintf("ckpt-%08d%s", seq, ckptExt) {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Save durably writes payload as the next numbered checkpoint and prunes the
// oldest files beyond the retention budget. It returns the sequence number
// written. Pruning failures are ignored (stale files cost disk, not
// correctness); the write itself is atomic and fsynced.
func (s *Store) Save(payload []byte) (uint64, error) {
	seq := s.next
	if err := WriteFileAtomic(s.path(seq), KindTrainer, payload); err != nil {
		return 0, err
	}
	s.next = seq + 1
	if seqs, err := s.Seqs(); err == nil && len(seqs) > s.retain {
		for _, old := range seqs[:len(seqs)-s.retain] {
			os.Remove(s.path(old))
		}
	}
	return seq, nil
}

// Read returns the verified payload of one checkpoint by sequence number.
func (s *Store) Read(seq uint64) ([]byte, error) {
	return ReadFile(s.path(seq), KindTrainer)
}

// Latest returns the newest checkpoint whose frame verifies, walking backward
// past corrupt or unreadable files. It returns the payload, its sequence
// number, and the list of newer sequence numbers that were skipped as
// corrupt (for the caller to log). os.ErrNotExist is returned when the store
// holds no loadable checkpoint at all.
func (s *Store) Latest() (payload []byte, seq uint64, skipped []uint64, err error) {
	seqs, err := s.Seqs()
	if err != nil {
		return nil, 0, nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		p, rerr := s.Read(seqs[i])
		if rerr == nil {
			return p, seqs[i], skipped, nil
		}
		skipped = append(skipped, seqs[i])
	}
	return nil, 0, skipped, fmt.Errorf("checkpoint: no loadable checkpoint in %s: %w", s.dir, os.ErrNotExist)
}
