package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sync/atomic"

	"cardnet/internal/core"
)

// A Checkpointer persists trainer state from inside a training run. It is
// wired in as a core.TrainHook (wrapping whatever hook is already attached,
// e.g. the train-log writer) plus core.Config.Stop, and writes a checkpoint:
//
//   - every N epochs (the interval passed to NewCheckpointer),
//   - on the epoch where a stop was requested (so SIGTERM flushes the exact
//     epoch the trainer halts at and resume is bit-identical), and
//   - on the early-stop epoch (so the final state survives a crash between
//     training and model publication).
//
// Save failures cannot abort the run from inside a hook; they are recorded
// and reported by Err after the run.
type Checkpointer struct {
	store *Store
	every int
	stop  atomic.Bool
	saves int
	err   error
}

// NewCheckpointer returns a Checkpointer writing to store every `every`
// epochs; every < 1 is treated as 1 (checkpoint each epoch).
func NewCheckpointer(store *Store, every int) *Checkpointer {
	if every < 1 {
		every = 1
	}
	return &Checkpointer{store: store, every: every}
}

// RequestStop asks the trainer to halt at the next epoch boundary. Safe to
// call from any goroutine (cmd/cardnet calls it from the signal handler).
func (c *Checkpointer) RequestStop() { c.stop.Store(true) }

// StopRequested reports whether RequestStop was called; pass it as
// core.Config.Stop.
func (c *Checkpointer) StopRequested() bool { return c.stop.Load() }

// Saves returns how many checkpoints this Checkpointer has written.
func (c *Checkpointer) Saves() int { return c.saves }

// Err returns the first checkpoint-write failure, if any.
func (c *Checkpointer) Err() error { return c.err }

// Hook returns the core.TrainHook to attach to the training config. It first
// delivers the event to next (nil is fine), then decides whether this epoch's
// state must be persisted.
func (c *Checkpointer) Hook(next core.TrainHook) core.TrainHook {
	return func(ev core.TrainEvent) {
		if next != nil {
			next(ev)
		}
		due := ev.Epoch%c.every == 0 || ev.EarlyStop || c.StopRequested()
		if !due || ev.Snapshot == nil {
			return
		}
		if err := c.SaveState(ev.Snapshot()); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// SaveState gob-encodes a trainer state and writes it as the next numbered
// checkpoint in the store.
func (c *Checkpointer) SaveState(st *core.TrainerState) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("checkpoint: encode trainer state: %w", err)
	}
	if _, err := c.store.Save(buf.Bytes()); err != nil {
		return err
	}
	c.saves++
	return nil
}

// LoadLatest returns the newest decodable trainer state in the store, the
// sequence number it came from, and the newer sequence numbers skipped as
// corrupt or undecodable (for the caller to log). Files that pass the CRC but
// fail gob decoding (e.g. written by an incompatible version) are skipped the
// same way as torn files: resume falls back to the previous retained
// checkpoint rather than dying. The error wraps os.ErrNotExist when the store
// holds no usable checkpoint.
func LoadLatest(store *Store) (st *core.TrainerState, seq uint64, skipped []uint64, err error) {
	seqs, err := store.Seqs()
	if err != nil {
		return nil, 0, nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		payload, rerr := store.Read(seqs[i])
		if rerr != nil {
			skipped = append(skipped, seqs[i])
			continue
		}
		var got core.TrainerState
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&got); derr != nil {
			skipped = append(skipped, seqs[i])
			continue
		}
		return &got, seqs[i], skipped, nil
	}
	return nil, 0, skipped, fmt.Errorf("checkpoint: no usable checkpoint in %s: %w", store.Dir(), os.ErrNotExist)
}
