package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	payload := []byte("some payload bytes")
	if err := WriteFileAtomic(path, KindTrainer, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, KindTrainer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	// Wrong kind is rejected with a non-corrupt error.
	if _, err := ReadFile(path, KindModel); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-kind read: %v", err)
	}
}

func TestReadFileDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	payload := bytes.Repeat([]byte("abc"), 100)
	write := func() {
		if err := WriteFileAtomic(path, KindTrainer, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Truncated mid-payload.
	write()
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-10], 0o644)
	if _, err := ReadFile(path, KindTrainer); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: got %v, want ErrCorrupt", err)
	}

	// Truncated inside the header.
	write()
	os.WriteFile(path, raw[:10], 0o644)
	if _, err := ReadFile(path, KindTrainer); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header-truncated file: got %v, want ErrCorrupt", err)
	}

	// Bit flip in the payload (CRC mismatch).
	write()
	raw, _ = os.ReadFile(path)
	raw[len(raw)-5] ^= 0x40
	os.WriteFile(path, raw, 0o644)
	if _, err := ReadFile(path, KindTrainer); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped file: got %v, want ErrCorrupt", err)
	}

	// Not a checkpoint file at all.
	os.WriteFile(path, []byte("junk that is not framed"), 0o644)
	if _, err := ReadFile(path, KindTrainer); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk file: got %v, want ErrCorrupt", err)
	}
}

func TestWriteFileAtomicLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFileAtomic(filepath.Join(dir, "m.gob"), KindModel, []byte("m")); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "m.gob" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
}

func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := s.Seqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 3 || seqs[2] != 5 {
		t.Fatalf("retained seqs = %v, want [3 4 5]", seqs)
	}

	// Reopening continues the sequence instead of reusing numbers.
	s2, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s2.Save([]byte{99})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("seq after reopen = %d, want 6", seq)
	}
}

func TestStoreLatestFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest (simulating a torn write that somehow got renamed,
	// or a bad disk block), truncate the middle one.
	os.WriteFile(s.path(3), []byte("CKPTgarbage"), 0o644)
	raw, _ := os.ReadFile(s.path(2))
	os.WriteFile(s.path(2), raw[:len(raw)-1], 0o644)

	payload, seq, skipped, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || !bytes.Equal(payload, []byte{1}) {
		t.Fatalf("Latest = seq %d payload %v, want seq 1 [1]", seq, payload)
	}
	if len(skipped) != 2 || skipped[0] != 3 || skipped[1] != 2 {
		t.Fatalf("skipped = %v, want [3 2]", skipped)
	}
}

func TestStoreLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte{1}); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(s.path(1), []byte("x"), 0o644)
	if _, _, _, err := s.Latest(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("all-corrupt Latest: got %v, want ErrNotExist", err)
	}
}

func TestStoreIgnoresTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte{1}); err != nil {
		t.Fatal(err)
	}
	// Orphan temp file from a crashed write, plus unrelated files.
	os.WriteFile(filepath.Join(dir, ".ckpt-00000009.ckpt.tmp-123"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	seqs, err := s.Seqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("seqs = %v, want [1]", seqs)
	}
}
