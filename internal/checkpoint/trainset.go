package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cardnet/internal/core"
)

// trainSetFile is the gob payload behind a KindTrainSet frame: the exact
// train/valid split a retrain ran on, frozen together so resume verification
// (core.TrainerState.DataHash) sees byte-identical data after a restart.
type trainSetFile struct {
	Train, Valid *core.TrainSet
}

// SaveTrainSet stages a train/valid split at path through the framed atomic
// writer. The autopilot persists the split it built from feedback and audit
// samples before starting a candidate retrain; a process that dies mid-retrain
// can then resume from its latest trainer checkpoint against the very same
// data instead of rebuilding a (different) set and failing the DataHash check.
func SaveTrainSet(path string, train, valid *core.TrainSet) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(trainSetFile{Train: train, Valid: valid}); err != nil {
		return fmt.Errorf("checkpoint: encode train set: %w", err)
	}
	return WriteFileAtomic(path, KindTrainSet, buf.Bytes())
}

// LoadTrainSet loads a split staged by SaveTrainSet, verifying the frame.
func LoadTrainSet(path string) (train, valid *core.TrainSet, err error) {
	payload, err := ReadFile(path, KindTrainSet)
	if err != nil {
		return nil, nil, err
	}
	var f trainSetFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("%w: %s: decode train set: %v", ErrCorrupt, path, err)
	}
	if f.Train == nil || f.Train.X == nil || f.Train.Labels == nil {
		return nil, nil, fmt.Errorf("%w: %s: train set frame missing training split", ErrCorrupt, path)
	}
	return f.Train, f.Valid, nil
}
