package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCorrupt marks a file that failed header or checksum verification —
// truncated, torn, bit-flipped, or not a checkpoint file at all. Callers
// (Store.LoadLatest) treat it as "skip this file and fall back", never as
// decodable data.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated file")

// Kind tags distinguish what a framed file carries.
const (
	// KindTrainer frames a gob-encoded core.TrainerState.
	KindTrainer = "TRNR"
	// KindModel frames a gob-encoded model (core.Model.Save payload).
	KindModel = "MODL"
	// KindTrainSet frames a gob-encoded train/valid split (SaveTrainSet).
	KindTrainSet = "TSET"
)

const (
	fileMagic   = "CKPT"
	fileVersion = 1
	// header: magic(4) version(1) kind(4) payloadLen(8) crc32(4)
	headerSize = 4 + 1 + 4 + 8 + 4
)

// WriteFileAtomic durably writes payload to path framed with the given kind:
// the bytes go to a temporary file in the same directory, are fsynced, then
// renamed over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old file or the complete
// new one. The temporary name starts with "." so Store directory scans skip
// any orphan left by a crash mid-write.
func WriteFileAtomic(path, kind string, payload []byte) error {
	if len(kind) != 4 {
		return fmt.Errorf("checkpoint: kind must be 4 bytes, got %q", kind)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure past this point, remove the orphan before returning.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}

	var hdr [headerSize]byte
	copy(hdr[0:4], fileMagic)
	hdr[4] = fileVersion
	copy(hdr[5:9], kind)
	binary.LittleEndian.PutUint64(hdr[9:17], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[17:21], crc32.ChecksumIEEE(payload))

	if _, err := tmp.Write(hdr[:]); err != nil {
		return fail(fmt.Errorf("checkpoint: write header: %w", err))
	}
	if _, err := tmp.Write(payload); err != nil {
		return fail(fmt.Errorf("checkpoint: write payload: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("checkpoint: fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("checkpoint: close temp file: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives power loss.
// Filesystems that do not support fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: fsync dir: %w", err)
	}
	return nil
}

// ReadFile reads a file written by WriteFileAtomic, verifies the magic,
// version, kind, length, and CRC32, and returns the payload. Any
// verification failure returns an error wrapping ErrCorrupt; a kind mismatch
// (a valid file of the wrong type) is reported distinctly.
func ReadFile(path, kind string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, gotKind, err := decodeFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if gotKind != kind {
		return nil, fmt.Errorf("checkpoint: %s holds a %q frame, expected %q", path, gotKind, kind)
	}
	return payload, nil
}

// decodeFrame verifies a framed byte slice and returns (payload, kind).
func decodeFrame(raw []byte) ([]byte, string, error) {
	if len(raw) < headerSize {
		return nil, "", fmt.Errorf("file shorter than header (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[0:4], []byte(fileMagic)) {
		return nil, "", fmt.Errorf("bad magic %q", raw[0:4])
	}
	if raw[4] != fileVersion {
		return nil, "", fmt.Errorf("unsupported format version %d", raw[4])
	}
	kind := string(raw[5:9])
	n := binary.LittleEndian.Uint64(raw[9:17])
	if uint64(len(raw)-headerSize) != n {
		return nil, "", fmt.Errorf("payload length %d, header says %d (truncated?)", len(raw)-headerSize, n)
	}
	payload := raw[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(raw[17:21]); got != want {
		return nil, "", fmt.Errorf("CRC mismatch (got %#x, header %#x)", got, want)
	}
	return payload, kind, nil
}
