package checkpoint

import (
	"bytes"
	"fmt"
	"os"

	"cardnet/internal/core"
)

// SaveModel publishes a trained model at path through the framed atomic
// writer: the serving loader (startup and /admin/reload) can never observe a
// torn or partially-written model file, and a copy truncated in transit fails
// the CRC instead of decoding silently.
func SaveModel(path string, m *core.Model) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return fmt.Errorf("checkpoint: encode model: %w", err)
	}
	return WriteFileAtomic(path, KindModel, buf.Bytes())
}

// LoadModel loads a model published by SaveModel, verifying the frame. Files
// from before the framing format (bare gob, as core.Model.Save emits) are
// still accepted: anything without the frame magic is handed to the legacy
// decoder, which fails loudly on truncation rather than yielding a partial
// model.
func LoadModel(path string) (*core.Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && string(raw[0:4]) == fileMagic {
		payload, kind, err := decodeFrame(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		if kind != KindModel {
			return nil, fmt.Errorf("checkpoint: %s holds a %q frame, not a model — point -model at a published model file", path, kind)
		}
		return core.Load(bytes.NewReader(payload))
	}
	m, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s is neither a framed nor a legacy model file: %w", path, err)
	}
	return m, nil
}
