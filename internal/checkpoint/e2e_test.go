package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
	"cardnet/internal/tensor"
)

// fixture builds a small Hamming workload with exact labels (mirrors the
// internal/core test fixture).
func fixture(t *testing.T, n int) (*core.TrainSet, *core.TrainSet) {
	t.Helper()
	recs := dataset.BinaryCodes(n, 32, 4, 0.08, 5)
	ext := feature.NewHammingExtractor(32, 12, 12)
	ix := simselect.NewHammingIndex(recs)
	grid := dataset.ThresholdGrid(12, 12)
	counts := func(q dist.BitVector, g []float64) []int {
		cum := ix.CountAtEach(q, 12)
		out := make([]int, len(g))
		for i, theta := range g {
			out[i] = cum[int(theta)]
		}
		return out
	}
	queries := recs[:n/2]
	train, err := core.BuildTrainSet[dist.BitVector](ext, queries[:len(queries)*4/5], grid, counts)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := core.BuildTrainSet[dist.BitVector](ext, queries[len(queries)*4/5:], grid, counts)
	if err != nil {
		t.Fatal(err)
	}
	return train, valid
}

func tinyConfig(tauMax int) core.Config {
	cfg := core.DefaultConfig(tauMax)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 6
	cfg.VAEEpochs = 3
	cfg.PhiHidden = []int{24, 16}
	cfg.ZDim = 12
	cfg.Epochs = 6
	cfg.Batch = 16
	cfg.Accel = true
	cfg.Seed = 21
	return cfg
}

func modelBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKillAndResumeThroughStore is the end-to-end fault-tolerance contract:
// a training run checkpointed through the Checkpointer, killed after epoch 3
// (simulated SIGTERM via RequestStop), and resumed from the on-disk store in
// a fresh process image produces a bit-identical model to an uninterrupted
// run, even with the newest on-disk checkpoint corrupted by a torn write.
func TestKillAndResumeThroughStore(t *testing.T) {
	tensor.SetWorkers(1)
	train, valid := fixture(t, 120)
	cfg := tinyConfig(train.TauTop)
	dir := t.TempDir()

	// Reference: uninterrupted run.
	ref := core.New(cfg, train.X.Cols)
	refRes := ref.Train(train, valid)
	refBytes := modelBytes(t, ref)

	// "Process 1": checkpoint every epoch, SIGTERM during epoch 3.
	store, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(store, 1)
	run1 := cfg
	run1.Hook = ck.Hook(func(ev core.TrainEvent) {
		if ev.Epoch == 3 {
			ck.RequestStop() // signal arrives mid-epoch; trainer stops at the boundary
		}
	})
	run1.Stop = ck.StopRequested
	m1 := core.New(run1, train.X.Cols)
	res1 := m1.Train(train, valid)
	if !res1.Interrupted || res1.Epochs != 3 {
		t.Fatalf("run 1 not interrupted at epoch 3: %+v", res1)
	}
	if ck.Err() != nil {
		t.Fatal(ck.Err())
	}
	if ck.Saves() != 3 {
		t.Fatalf("saves = %d, want 3", ck.Saves())
	}

	// Corrupt the newest checkpoint: resume must fall back to epoch 2's.
	seqs, _ := store.Seqs()
	newest := seqs[len(seqs)-1]
	raw, _ := os.ReadFile(filepath.Join(dir, "ckpt-00000003.ckpt"))
	os.WriteFile(filepath.Join(dir, "ckpt-00000003.ckpt"), raw[:len(raw)/2], 0o644)

	// "Process 2": fresh store handle, load latest usable, resume.
	store2, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, seq, skipped, err := LoadLatest(store2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != newest-1 || len(skipped) != 1 || skipped[0] != newest {
		t.Fatalf("LoadLatest seq=%d skipped=%v, want seq=%d skipped=[%d]", seq, skipped, newest-1, newest)
	}
	if st.Epoch != 2 {
		t.Fatalf("resumed from epoch %d, want 2", st.Epoch)
	}

	m2, err := core.RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	ck2 := NewCheckpointer(store2, 1)
	m2.Cfg.Hook = ck2.Hook(nil)
	m2.Cfg.Stop = ck2.StopRequested
	res2, err := m2.ResumeTrain(train, valid, st)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Err() != nil {
		t.Fatal(ck2.Err())
	}
	if res2.Epochs != refRes.Epochs || res2.BestValidMSLE != refRes.BestValidMSLE {
		t.Fatalf("resumed result %+v != reference %+v", res2, refRes)
	}
	if !bytes.Equal(refBytes, modelBytes(t, m2)) {
		t.Fatal("kill-and-resume model differs from uninterrupted run")
	}

	// Publication: the finished model goes out through the atomic writer and
	// round-trips exactly.
	modelPath := filepath.Join(dir, "model.gob")
	if err := SaveModel(modelPath, m2); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, modelBytes(t, loaded)) {
		t.Fatal("published model differs after load")
	}
}

// TestLoadModelRejectsTornFile: a simulated crash during model save must
// never leave a file the loader accepts silently.
func TestLoadModelRejectsTornFile(t *testing.T) {
	tensor.SetWorkers(1)
	train, _ := fixture(t, 60)
	cfg := tinyConfig(train.TauTop)
	cfg.Epochs = 1
	m := core.New(cfg, train.X.Cols)
	m.Train(train, nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}

	// Torn mid-payload: CRC catches it.
	raw, _ := os.ReadFile(path)
	for _, cut := range []int{len(raw) / 2, headerSize + 1, 10, 3} {
		os.WriteFile(path, raw[:cut], 0o644)
		if _, err := LoadModel(path); err == nil {
			t.Fatalf("LoadModel accepted a file truncated to %d bytes", cut)
		}
	}

	// Legacy (unframed) model files still load.
	legacy := filepath.Join(dir, "legacy.gob")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadModel(legacy); err != nil {
		t.Fatalf("legacy model file rejected: %v", err)
	}

	// A trainer checkpoint is refused with a kind error, not decoded.
	ckpt := filepath.Join(dir, "trainer.gob")
	if err := WriteFileAtomic(ckpt, KindTrainer, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(ckpt); err == nil {
		t.Fatal("LoadModel accepted a trainer checkpoint")
	}
}

// TestCheckpointerInterval: only every-N epochs are persisted, plus the
// early-stop epoch.
func TestCheckpointerInterval(t *testing.T) {
	tensor.SetWorkers(1)
	train, valid := fixture(t, 100)
	cfg := tinyConfig(train.TauTop)
	cfg.Epochs = 6
	store, err := OpenStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(store, 2)
	cfg.Hook = ck.Hook(nil)
	cfg.Stop = ck.StopRequested
	m := core.New(cfg, train.X.Cols)
	res := m.Train(train, valid)
	if res.Interrupted {
		t.Fatalf("unexpected interruption: %+v", res)
	}
	if ck.Err() != nil {
		t.Fatal(ck.Err())
	}
	if ck.Saves() != 3 { // epochs 2, 4, 6
		t.Fatalf("saves = %d, want 3", ck.Saves())
	}
	st, _, _, err := LoadLatest(store)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 6 || st.Phase != core.PhaseTrain {
		t.Fatalf("latest checkpoint epoch=%d phase=%q", st.Epoch, st.Phase)
	}
}
