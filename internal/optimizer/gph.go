package optimizer

import (
	"math"

	"cardnet/internal/dist"
)

// GPH processes Hamming-distance selections over high-dimensional binary
// vectors in the style of the GPH algorithm (Qin et al., ICDE 2018): the
// dimensions are split into m non-overlapping parts; by the general
// pigeonhole principle, if H(q,y) ≤ θ and the per-part threshold allocation
// satisfies Σᵢ(tᵢ+1) ≥ θ+1, every answer must be within tᵢ of q on at least
// one part. Each part has its own pattern index; the candidate set is the
// union of the per-part selections, verified with the full distance. A query
// optimizer allocates {tᵢ} by dynamic programming to minimize the sum of
// *estimated* per-part cardinalities — the role CardNet-A plays in the
// paper's Figure 13 case study.
type GPH struct {
	Records  []dist.BitVector
	PartBits int
	Parts    int
	bounds   []int // part p covers bits [bounds[p], bounds[p+1])
	patterns []map[uint64][]int
}

// NewGPH partitions dim bits into ⌈dim/partBits⌉ parts and builds per-part
// pattern indexes.
func NewGPH(records []dist.BitVector, partBits int) *GPH {
	g := &GPH{Records: records, PartBits: partBits}
	if len(records) == 0 {
		return g
	}
	dim := records[0].Len
	g.Parts = (dim + partBits - 1) / partBits
	for p := 0; p <= g.Parts; p++ {
		b := p * partBits
		if b > dim {
			b = dim
		}
		g.bounds = append(g.bounds, b)
	}
	g.patterns = make([]map[uint64][]int, g.Parts)
	for p := range g.patterns {
		g.patterns[p] = map[uint64][]int{}
		for id, r := range records {
			pat := g.partPattern(r, p)
			g.patterns[p][pat] = append(g.patterns[p][pat], id)
		}
	}
	return g
}

// partPattern extracts part p of a record as an integer (parts are ≤ 64
// bits).
func (g *GPH) partPattern(r dist.BitVector, p int) uint64 {
	var pat uint64
	for i := g.bounds[p]; i < g.bounds[p+1]; i++ {
		if r.Bit(i) {
			pat |= 1 << (i - g.bounds[p])
		}
	}
	return pat
}

// PartCount returns the exact number of records within part-distance t of
// the query on part p (the oracle per-part cardinality).
func (g *GPH) PartCount(q dist.BitVector, p, t int) int {
	if t < 0 {
		return 0
	}
	qp := g.partPattern(q, p)
	n := 0
	for pat, ids := range g.patterns[p] {
		if popcount(pat^qp) <= t {
			n += len(ids)
		}
	}
	return n
}

// PartEstimator estimates per-part cardinalities for threshold allocation.
type PartEstimator interface {
	Name() string
	EstimatePart(part int, q dist.BitVector, t int) float64
}

// Allocate chooses per-part thresholds minimizing the summed estimated
// cardinality subject to the pigeonhole condition Σ(tᵢ+1) ≥ θ+1, via dynamic
// programming over parts and allocated budget. tᵢ = −1 deselects a part
// (contributing no candidates and no budget). Returns the allocation.
func (g *GPH) Allocate(est PartEstimator, q dist.BitVector, theta int) []int {
	need := theta + 1
	maxT := g.PartBits
	// dp[s] = minimal cost achieving exactly budget s so far; choice[p][s]
	// records the threshold used. Budgets above `need` clamp to `need`.
	const inf = math.MaxFloat64
	dp := make([]float64, need+1)
	choice := make([][]int, g.Parts)
	for s := 1; s <= need; s++ {
		dp[s] = inf
	}
	for p := 0; p < g.Parts; p++ {
		choice[p] = make([]int, need+1)
		for s := range choice[p] {
			choice[p][s] = -2 // unreached
		}
		next := make([]float64, need+1)
		for s := range next {
			next[s] = inf
		}
		// Option: skip the part (t = −1).
		for s := 0; s <= need; s++ {
			if dp[s] < next[s] {
				next[s] = dp[s]
				choice[p][s] = -1
			}
		}
		// Option: allocate t ∈ [0, maxT].
		costs := make([]float64, maxT+1)
		for t := 0; t <= maxT; t++ {
			costs[t] = est.EstimatePart(p, q, t)
			if t > 0 && costs[t] < costs[t-1] {
				costs[t] = costs[t-1] // enforce monotone costs for the DP
			}
		}
		for s := 0; s <= need; s++ {
			if dp[s] == inf {
				continue
			}
			for t := 0; t <= maxT; t++ {
				ns := s + t + 1
				if ns > need {
					ns = need
				}
				if c := dp[s] + costs[t]; c < next[ns] {
					next[ns] = c
					choice[p][ns] = t
				}
			}
		}
		dp = next
	}

	// Reconstruct. If the budget is unreachable (θ too large for the
	// dimensionality), fall back to maximal thresholds.
	alloc := make([]int, g.Parts)
	if dp[need] == inf {
		for p := range alloc {
			alloc[p] = maxT
		}
		return alloc
	}
	s := need
	for p := g.Parts - 1; p >= 0; p-- {
		t := choice[p][s]
		if t == -2 {
			t = maxT
		}
		alloc[p] = t
		if t >= 0 {
			s -= t + 1
			if s < 0 {
				s = 0
			}
		}
	}
	return alloc
}

// Process answers the selection with the given allocation: per-part
// candidate generation, dedup, full verification. It returns the result ids
// and the candidate count (the postprocessing cost driver).
func (g *GPH) Process(q dist.BitVector, theta int, alloc []int) (result []int, candidates int) {
	seen := map[int]bool{}
	for p := 0; p < g.Parts; p++ {
		t := alloc[p]
		if t < 0 {
			continue
		}
		qp := g.partPattern(q, p)
		for pat, ids := range g.patterns[p] {
			if popcount(pat^qp) <= t {
				for _, id := range ids {
					seen[id] = true
				}
			}
		}
	}
	candidates = len(seen)
	for id := range seen {
		if dist.Hamming(q, g.Records[id]) <= theta {
			result = append(result, id)
		}
	}
	return result, candidates
}

// ExactPartEstimator is the Exact oracle for allocation.
type ExactPartEstimator struct{ G *GPH }

// Name identifies the oracle.
func (e *ExactPartEstimator) Name() string { return "Exact" }

// EstimatePart returns the true per-part count.
func (e *ExactPartEstimator) EstimatePart(part int, q dist.BitVector, t int) float64 {
	return float64(e.G.PartCount(q, part, t))
}

// MeanPartEstimator returns the same cardinality for every query at a given
// (part, threshold), precomputed from sampled queries — Figure 13's Mean.
type MeanPartEstimator struct {
	Table [][]float64 // part × threshold
}

// NewMeanPartEstimator averages PartCount over `samples` dataset records.
func NewMeanPartEstimator(g *GPH, samples int) *MeanPartEstimator {
	m := &MeanPartEstimator{}
	if samples > len(g.Records) {
		samples = len(g.Records)
	}
	for p := 0; p < g.Parts; p++ {
		row := make([]float64, g.PartBits+1)
		for t := 0; t <= g.PartBits; t++ {
			var sum float64
			for s := 0; s < samples; s++ {
				q := g.Records[s*len(g.Records)/samples]
				sum += float64(g.PartCount(q, p, t))
			}
			if samples > 0 {
				row[t] = sum / float64(samples)
			}
		}
		m.Table = append(m.Table, row)
	}
	return m
}

// Name identifies the baseline.
func (m *MeanPartEstimator) Name() string { return "Mean" }

// EstimatePart looks up the mean.
func (m *MeanPartEstimator) EstimatePart(part int, _ dist.BitVector, t int) float64 {
	if t < 0 {
		return 0
	}
	row := m.Table[part]
	if t >= len(row) {
		t = len(row) - 1
	}
	return row[t]
}

// FuncPartEstimator adapts arbitrary per-part estimators (CardNet-A, DL-RMI,
// histograms) for the allocator.
type FuncPartEstimator struct {
	Label string
	Fn    func(part int, q dist.BitVector, t int) float64
}

// Name identifies the adapted model.
func (f *FuncPartEstimator) Name() string { return f.Label }

// EstimatePart delegates to the wrapped function.
func (f *FuncPartEstimator) EstimatePart(part int, q dist.BitVector, t int) float64 {
	return f.Fn(part, q, t)
}

// PartView extracts part p of a full record as a standalone BitVector, the
// record type per-part estimators are trained on.
func (g *GPH) PartView(r dist.BitVector, p int) dist.BitVector {
	width := g.bounds[p+1] - g.bounds[p]
	v := dist.NewBitVector(g.PartBits)
	for i := 0; i < width; i++ {
		if r.Bit(g.bounds[p] + i) {
			v.SetBit(i, true)
		}
	}
	return v
}

func popcount(w uint64) int {
	w -= (w >> 1) & 0x5555555555555555
	w = (w & 0x3333333333333333) + ((w >> 2) & 0x3333333333333333)
	w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((w * 0x0101010101010101) >> 56)
}
