package optimizer

import (
	"cardnet/internal/dist"
	"cardnet/internal/simselect"
)

// Predicate is one conjunct: Euclidean distance on attribute Attr within
// Theta.
type Predicate struct {
	Attr  int
	Query []float64
	Theta float64
}

// AttrEstimator estimates the cardinality of one predicate. The benchmark
// wires CardNet-A, DB-US, TL-XGB, DL-RMI, a per-threshold Mean, and an Exact
// oracle behind this interface (paper Figure 11).
type AttrEstimator interface {
	Name() string
	EstimateAttr(attr int, q []float64, theta float64) float64
}

// ConjunctiveDB holds a multi-attribute embedding table (paper Table 11
// analogue) with one exact metric index per attribute: queries are processed
// by one index lookup on a chosen predicate followed by on-the-fly
// verification of the rest.
type ConjunctiveDB struct {
	Attrs [][][]float64 // attrs × records × dims
	N     int
	idx   []*simselect.EuclideanIndex
}

// NewConjunctiveDB indexes every attribute.
func NewConjunctiveDB(attrs [][][]float64) *ConjunctiveDB {
	db := &ConjunctiveDB{Attrs: attrs}
	if len(attrs) > 0 {
		db.N = len(attrs[0])
	}
	for _, col := range attrs {
		db.idx = append(db.idx, simselect.NewEuclideanIndex(col))
	}
	return db
}

// Process answers the conjunction using predicate `pick` for the index
// lookup. It returns the matching record ids and the number of candidate
// records the lookup produced (the postprocessing cost driver).
func (db *ConjunctiveDB) Process(preds []Predicate, pick int) (result []int, candidates int) {
	p := preds[pick]
	cands := db.idx[p.Attr].Select(p.Query, p.Theta)
	candidates = len(cands)
	for _, id := range cands {
		ok := true
		for pi, q := range preds {
			if pi == pick {
				continue
			}
			if dist.Euclidean(q.Query, db.Attrs[q.Attr][id]) > q.Theta {
				ok = false
				break
			}
		}
		if ok {
			result = append(result, id)
		}
	}
	return result, candidates
}

// CandidateCount returns the exact selectivity of one predicate (the oracle
// the planner tries to approximate).
func (db *ConjunctiveDB) CandidateCount(p Predicate) int {
	return db.idx[p.Attr].Count(p.Query, p.Theta)
}

// Plan picks the predicate with the smallest estimated cardinality.
func Plan(est AttrEstimator, preds []Predicate) int {
	best, bestV := 0, est.EstimateAttr(preds[0].Attr, preds[0].Query, preds[0].Theta)
	for i := 1; i < len(preds); i++ {
		if v := est.EstimateAttr(preds[i].Attr, preds[i].Query, preds[i].Theta); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// BestPick returns the predicate with the smallest actual candidate count —
// the plan an oracle would choose. Used to measure planning precision
// (paper Figure 12).
func (db *ConjunctiveDB) BestPick(preds []Predicate) int {
	best, bestV := 0, db.CandidateCount(preds[0])
	for i := 1; i < len(preds); i++ {
		if v := db.CandidateCount(preds[i]); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ExactAttrEstimator is the Exact oracle of Figure 11: it returns the true
// cardinality (instantly, by index lookup — its planning cost is charged to
// estimation time in the benchmark, as in the paper).
type ExactAttrEstimator struct{ DB *ConjunctiveDB }

// Name identifies the oracle.
func (e *ExactAttrEstimator) Name() string { return "Exact" }

// EstimateAttr returns the exact count.
func (e *ExactAttrEstimator) EstimateAttr(attr int, q []float64, theta float64) float64 {
	return float64(e.DB.idx[attr].Count(q, theta))
}

// MeanAttrEstimator is the Mean baseline of Figure 11: it returns the same
// cardinality for a given (attribute, quantized threshold), precomputed from
// offline random queries, ignoring the query itself.
type MeanAttrEstimator struct {
	Buckets int
	MaxTh   float64
	Table   [][]float64 // attr × bucket
}

// NewMeanAttrEstimator precomputes per-bucket mean cardinalities from the
// dataset itself (sampled queries).
func NewMeanAttrEstimator(db *ConjunctiveDB, buckets int, maxTheta float64, samples int) *MeanAttrEstimator {
	m := &MeanAttrEstimator{Buckets: buckets, MaxTh: maxTheta}
	for attr := range db.Attrs {
		row := make([]float64, buckets)
		for b := 0; b < buckets; b++ {
			theta := maxTheta * (float64(b) + 0.5) / float64(buckets)
			var sum float64
			n := 0
			for s := 0; s < samples && s < db.N; s++ {
				sum += float64(db.idx[attr].Count(db.Attrs[attr][s*db.N/samples], theta))
				n++
			}
			if n > 0 {
				row[b] = sum / float64(n)
			}
		}
		m.Table = append(m.Table, row)
	}
	return m
}

// Name identifies the baseline.
func (m *MeanAttrEstimator) Name() string { return "Mean" }

// EstimateAttr looks up the per-threshold mean.
func (m *MeanAttrEstimator) EstimateAttr(attr int, _ []float64, theta float64) float64 {
	b := int(theta / m.MaxTh * float64(m.Buckets))
	if b < 0 {
		b = 0
	}
	if b >= m.Buckets {
		b = m.Buckets - 1
	}
	return m.Table[attr][b]
}

// FuncAttrEstimator adapts an arbitrary per-attribute estimation function
// (how the benchmark wires learned models trained per attribute).
type FuncAttrEstimator struct {
	Label string
	Fn    func(attr int, q []float64, theta float64) float64
}

// Name identifies the adapted model.
func (f *FuncAttrEstimator) Name() string { return f.Label }

// EstimateAttr delegates to the wrapped function.
func (f *FuncAttrEstimator) EstimateAttr(attr int, q []float64, theta float64) float64 {
	return f.Fn(attr, q, theta)
}
