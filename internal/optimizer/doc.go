// Package optimizer implements the paper's two query-optimizer case studies
// (Section 9.11), the "is a better estimate worth anything downstream"
// evaluation: a conjunctive Euclidean-distance query planner that picks the
// most selective predicate for index lookup (Table 13's setting), and a
// GPH-style Hamming query processor that allocates per-partition thresholds
// by dynamic programming over estimated cardinalities (Table 14's setting).
//
// Both consumers take estimates through a plain func handle, so any
// estimator — CardNet from internal/core, the internal/baselines methods, or
// the exact internal/simselect oracle as the control — plugs in unchanged.
package optimizer
