package optimizer

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cardnet/internal/dataset"
	"cardnet/internal/dist"
)

func buildConjDB() *ConjunctiveDB {
	attrs := [][][]float64{
		dataset.Vectors(300, 8, 3, 0.1, true, 1),
		dataset.Vectors(300, 8, 3, 0.25, true, 2),
		dataset.Vectors(300, 8, 3, 0.05, true, 3),
	}
	return NewConjunctiveDB(attrs)
}

func TestConjunctiveProcessCorrectAnyPick(t *testing.T) {
	db := buildConjDB()
	preds := []Predicate{
		{Attr: 0, Query: db.Attrs[0][7], Theta: 0.3},
		{Attr: 1, Query: db.Attrs[1][7], Theta: 0.4},
		{Attr: 2, Query: db.Attrs[2][7], Theta: 0.2},
	}
	// Result set must be identical regardless of which predicate drives the
	// index lookup.
	base, _ := db.Process(preds, 0)
	sort.Ints(base)
	for pick := 1; pick < 3; pick++ {
		got, _ := db.Process(preds, pick)
		sort.Ints(got)
		if len(got) != len(base) {
			t.Fatalf("pick %d: %d results vs %d", pick, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("pick %d: result sets differ", pick)
			}
		}
	}
	// Record 7 satisfies all predicates at distance 0.
	found := false
	for _, id := range base {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("query record itself must be in the result")
	}
}

func TestPlanPicksSmallestEstimate(t *testing.T) {
	est := &FuncAttrEstimator{Label: "stub", Fn: func(attr int, _ []float64, _ float64) float64 {
		return float64(10 - attr) // attr 2 is the most selective
	}}
	preds := []Predicate{{Attr: 0}, {Attr: 1}, {Attr: 2}}
	if got := Plan(est, preds); got != 2 {
		t.Fatalf("Plan picked %d", got)
	}
	if est.Name() != "stub" {
		t.Fatal("name")
	}
}

func TestExactEstimatorAlwaysBestPick(t *testing.T) {
	db := buildConjDB()
	exact := &ExactAttrEstimator{DB: db}
	rng := rand.New(rand.NewSource(4))
	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		id := rng.Intn(db.N)
		preds := []Predicate{
			{Attr: 0, Query: db.Attrs[0][id], Theta: 0.2 + rng.Float64()*0.3},
			{Attr: 1, Query: db.Attrs[1][id], Theta: 0.2 + rng.Float64()*0.3},
			{Attr: 2, Query: db.Attrs[2][id], Theta: 0.2 + rng.Float64()*0.3},
		}
		if Plan(exact, preds) == db.BestPick(preds) {
			agree++
		}
	}
	if agree != trials {
		t.Fatalf("exact estimator should always match BestPick: %d/%d", agree, trials)
	}
}

func TestMeanAttrEstimator(t *testing.T) {
	db := buildConjDB()
	m := NewMeanAttrEstimator(db, 8, 0.5, 20)
	if m.Name() != "Mean" {
		t.Fatal("name")
	}
	// Same estimate for any query at one threshold.
	a := m.EstimateAttr(0, db.Attrs[0][1], 0.3)
	b := m.EstimateAttr(0, db.Attrs[0][2], 0.3)
	if a != b {
		t.Fatal("Mean must ignore the query")
	}
	// Larger thresholds bucket to larger means on clustered data.
	lo := m.EstimateAttr(0, nil, 0.05)
	hi := m.EstimateAttr(0, nil, 0.45)
	if hi < lo {
		t.Fatalf("mean estimates should grow with θ: %v vs %v", lo, hi)
	}
	// Out-of-range thresholds clamp.
	if m.EstimateAttr(0, nil, -1) != m.EstimateAttr(0, nil, 0.001) {
		t.Fatal("negative θ must clamp to first bucket")
	}
	if m.EstimateAttr(0, nil, 99) != m.EstimateAttr(0, nil, 0.499) {
		t.Fatal("huge θ must clamp to last bucket")
	}
}

func buildGPH(n int) (*GPH, []dist.BitVector) {
	recs := dataset.BinaryCodes(n, 96, 6, 0.06, 11)
	return NewGPH(recs, 32), recs
}

func TestGPHProcessExactResults(t *testing.T) {
	g, recs := buildGPH(300)
	exact := &ExactPartEstimator{G: g}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := recs[r.Intn(len(recs))]
		theta := r.Intn(24)
		alloc := g.Allocate(exact, q, theta)
		got, _ := g.Process(q, theta, alloc)
		want := 0
		for _, rec := range recs {
			if dist.Hamming(q, rec) <= theta {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGPHAllocationSatisfiesPigeonhole(t *testing.T) {
	g, recs := buildGPH(200)
	exact := &ExactPartEstimator{G: g}
	for _, theta := range []int{0, 5, 16, 31} {
		alloc := g.Allocate(exact, recs[0], theta)
		if len(alloc) != g.Parts {
			t.Fatalf("alloc len %d", len(alloc))
		}
		budget := 0
		for _, tt := range alloc {
			if tt >= 0 {
				budget += tt + 1
			}
			if tt > g.PartBits {
				t.Fatalf("threshold %d exceeds part width", tt)
			}
		}
		if budget < theta+1 {
			t.Fatalf("pigeonhole violated at θ=%d: budget %d", theta, budget)
		}
	}
}

func TestGPHBetterEstimatesSmallerCandidates(t *testing.T) {
	g, recs := buildGPH(400)
	exact := &ExactPartEstimator{G: g}
	mean := NewMeanPartEstimator(g, 20)
	var exactCands, meanCands int
	for i := 0; i < 20; i++ {
		q := recs[i*17%len(recs)]
		theta := 16
		_, c1 := g.Process(q, theta, g.Allocate(exact, q, theta))
		_, c2 := g.Process(q, theta, g.Allocate(mean, q, theta))
		exactCands += c1
		meanCands += c2
	}
	if exactCands > meanCands {
		t.Fatalf("exact-driven allocation should not produce more candidates: %d vs %d", exactCands, meanCands)
	}
}

func TestGPHPartCountAndView(t *testing.T) {
	g, recs := buildGPH(100)
	q := recs[0]
	// Part distance 32 (full part width) matches every record.
	for p := 0; p < g.Parts; p++ {
		if got := g.PartCount(q, p, 32); got != 100 {
			t.Fatalf("part %d full-width count %d", p, got)
		}
		if got := g.PartCount(q, p, -1); got != 0 {
			t.Fatal("t=-1 must count 0")
		}
		// PartView distance equals HammingSlice on the original.
		v1 := g.PartView(q, p)
		v2 := g.PartView(recs[5], p)
		want := dist.HammingSlice(q, recs[5], p*32, minB((p+1)*32, q.Len))
		if dist.Hamming(v1, v2) != want {
			t.Fatalf("PartView distance mismatch on part %d", p)
		}
	}
}

func TestMeanPartEstimator(t *testing.T) {
	g, recs := buildGPH(150)
	m := NewMeanPartEstimator(g, 10)
	if m.Name() != "Mean" {
		t.Fatal("name")
	}
	if m.EstimatePart(0, recs[0], -1) != 0 {
		t.Fatal("t=-1 must estimate 0")
	}
	prev := -1.0
	for t2 := 0; t2 <= 32; t2++ {
		v := m.EstimatePart(0, recs[0], t2)
		if v < prev {
			t.Fatal("mean estimates must be monotone in t")
		}
		prev = v
	}
	if m.EstimatePart(0, recs[0], 99) != m.EstimatePart(0, recs[0], 32) {
		t.Fatal("t above part width must clamp")
	}
}

func TestGPHEmptyDataset(t *testing.T) {
	g := NewGPH(nil, 32)
	if g.Parts != 0 {
		t.Fatal("empty GPH should have no parts")
	}
}

func minB(a, b int) int {
	if a < b {
		return a
	}
	return b
}
