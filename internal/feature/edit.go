package feature

// EditExtractor handles strings under Levenshtein edit distance via the
// bounding method of Section 4.2: each character at position i sets the bits
// i−τmax .. i+τmax of its character group, so one edit operation changes at
// most 4·τmax+2 bits and f(x,y) edits yield Hamming distance at most
// f(x,y)·(4·τmax+2).
type EditExtractor struct {
	Alphabet string // distinct characters; index = group
	LMax     int    // maximum string length in the dataset
	MaxTau   int
	MaxTheta int

	group map[byte]int
}

// NewEditExtractor builds the extractor. Characters outside the alphabet are
// ignored by Encode (they cannot match anything in the dataset anyway).
func NewEditExtractor(alphabet string, lmax, thetaMax, tauMax int) *EditExtractor {
	e := &EditExtractor{Alphabet: alphabet, LMax: lmax, MaxTau: tauMax, MaxTheta: thetaMax,
		group: make(map[byte]int, len(alphabet))}
	for i := 0; i < len(alphabet); i++ {
		e.group[alphabet[i]] = i
	}
	return e
}

// groupWidth is the number of bits per character group: positions run from
// −τmax to lmax−1+τmax.
func (e *EditExtractor) groupWidth() int { return e.LMax + 2*e.MaxTau }

// Dim returns (lmax + 2·τmax)·|Σ|.
func (e *EditExtractor) Dim() int { return e.groupWidth() * len(e.Alphabet) }

// TauMax returns the transformed-threshold ceiling.
func (e *EditExtractor) TauMax() int { return e.MaxTau }

// ThetaMax returns the largest supported edit-distance threshold.
func (e *EditExtractor) ThetaMax() float64 { return float64(e.MaxTheta) }

// Encode sets, for each character σ at position i, bits i−τmax..i+τmax of
// group σ. Positions beyond lmax−1 are clamped away (longer strings simply
// truncate, matching the fixed-dimensional representation).
func (e *EditExtractor) Encode(s string) []float64 {
	w := e.groupWidth()
	out := make([]float64, e.Dim())
	limit := e.LMax
	if len(s) < limit {
		limit = len(s)
	}
	for i := 0; i < limit; i++ {
		g, ok := e.group[s[i]]
		if !ok {
			continue
		}
		base := g * w
		for j := i - e.MaxTau; j <= i+e.MaxTau; j++ {
			// bit index inside group: j + τmax ∈ [0, w).
			out[base+j+e.MaxTau] = 1
		}
	}
	return out
}

// Threshold uses the same transformation as Hamming distance (the bound is
// proportional to the edit distance).
func (e *EditExtractor) Threshold(theta float64) int {
	return proportional(theta, float64(e.MaxTheta), e.MaxTau, true)
}
