package feature

import (
	"math/rand"

	"cardnet/internal/dist"
)

// JaccardExtractor handles sets under Jaccard distance via b-bit minwise
// hashing (Section 4.3): k random orderings of the token universe are
// simulated with universal hash functions; for each, the last b bits of the
// minimum hash value are one-hot encoded into 2^b bits. Two sets x, y agree
// on a permutation's bmin with probability 1 − J(x,y), so the expected
// Hamming distance between encodings is proportional to the Jaccard
// distance.
type JaccardExtractor struct {
	K        int // number of hash functions (permutations)
	B        int // bits kept from each min-hash
	MaxTau   int
	MaxTheta float64

	// Universal hash parameters: h_i(e) = (a_i·e + c_i) mod p.
	a, c []uint64
}

const jaccardPrime = uint64(4294967311) // smallest prime > 2^32

// NewJaccardExtractor draws k hash functions from the given seed.
func NewJaccardExtractor(k, b int, thetaMax float64, tauMax int, seed int64) *JaccardExtractor {
	rng := rand.New(rand.NewSource(seed))
	e := &JaccardExtractor{K: k, B: b, MaxTau: tauMax, MaxTheta: thetaMax,
		a: make([]uint64, k), c: make([]uint64, k)}
	for i := 0; i < k; i++ {
		e.a[i] = uint64(rng.Int63n(int64(jaccardPrime-1))) + 1
		e.c[i] = uint64(rng.Int63n(int64(jaccardPrime)))
	}
	return e
}

// Dim returns 2^b · k.
func (e *JaccardExtractor) Dim() int { return (1 << e.B) * e.K }

// TauMax returns the transformed-threshold ceiling.
func (e *JaccardExtractor) TauMax() int { return e.MaxTau }

// ThetaMax returns the largest supported Jaccard distance threshold.
func (e *JaccardExtractor) ThetaMax() float64 { return e.MaxTheta }

// hash applies the i-th universal hash to a token.
func (e *JaccardExtractor) hash(i int, token uint32) uint64 {
	return (e.a[i]*uint64(token) + e.c[i]) % jaccardPrime
}

// BMin returns the last b bits of the minimum hash value of the set under
// permutation i (an integer in [0, 2^b)). Empty sets map to 0.
func (e *JaccardExtractor) BMin(i int, s dist.IntSet) int {
	if len(s) == 0 {
		return 0
	}
	minV := e.hash(i, s[0])
	for _, tok := range s[1:] {
		if h := e.hash(i, tok); h < minV {
			minV = h
		}
	}
	return int(minV & ((1 << e.B) - 1))
}

// Encode produces the concatenation of k one-hot 2^b-bit blocks.
func (e *JaccardExtractor) Encode(s dist.IntSet) []float64 {
	out := make([]float64, e.Dim())
	block := 1 << e.B
	for i := 0; i < e.K; i++ {
		out[i*block+e.BMin(i, s)] = 1
	}
	return out
}

// Threshold maps θ proportionally: the expected Hamming distance is
// f(x,y)·d, linear in the Jaccard distance.
func (e *JaccardExtractor) Threshold(theta float64) int {
	return proportional(theta, e.MaxTheta, e.MaxTau, false)
}
