// Package feature implements the paper's feature-extraction component
// (Sections 3.2 and 4): each extractor maps a record of some data type to a
// fixed-dimensional binary vector whose Hamming distances capture the
// original distance semantics, and monotonically maps the query threshold
// θ ∈ [0, θmax] to an integer τ ∈ [0, τmax].
package feature

// Extractor transforms records of type R and thresholds into the common
// interface required by the regression component: a {0,1}^d vector (stored
// as float64 for the neural models) and an integer threshold.
type Extractor[R any] interface {
	// Dim returns d, the binary-vector dimensionality.
	Dim() int
	// TauMax returns the largest transformed threshold the model supports.
	TauMax() int
	// ThetaMax returns the largest supported original threshold.
	ThetaMax() float64
	// Encode maps a record to its binary representation.
	Encode(r R) []float64
	// Threshold is h_thr: a monotone map from [0, ThetaMax] to [0, TauMax].
	Threshold(theta float64) int
}

// proportional implements the shared τ = ⌊τmax·θ/θmax⌋ transformation used
// for Hamming, edit, and Jaccard distances (Sections 4.1–4.3). For
// integer-valued distances with θmax ≤ τmax, the identity is used so each
// decoder owns exactly one distance value.
func proportional(theta, thetaMax float64, tauMax int, integerValued bool) int {
	if theta <= 0 {
		return 0
	}
	if theta > thetaMax {
		theta = thetaMax
	}
	if integerValued && thetaMax <= float64(tauMax) {
		return int(theta)
	}
	tau := int(float64(tauMax) * theta / thetaMax)
	if tau > tauMax {
		tau = tauMax
	}
	return tau
}

// EffectiveTauTop returns the largest τ an extractor ever produces, i.e.
// Threshold(ThetaMax). For integer distances with θmax < τmax only the first
// θmax+1 decoders are useful (Section 4 discussion).
func EffectiveTauTop[R any](e Extractor[R]) int {
	return e.Threshold(e.ThetaMax())
}
