package feature

// L1Extractor implements the "equivalency" feature-extraction option of
// Section 4: L1 (Manhattan) distance over bounded integer vectors can be
// expressed *exactly* in a Hamming space by thermometer-coding each
// coordinate — value v in [0, Max] becomes Max bits with the lowest v set —
// so H(enc(x), enc(y)) = Σᵢ |xᵢ − yᵢ| with no approximation. The threshold
// transform is therefore the same as for native Hamming distance.
type L1Extractor struct {
	Coords   int // number of integer coordinates
	Max      int // maximum coordinate value (inclusive)
	MaxTau   int
	MaxTheta int
}

// NewL1Extractor supports vectors of `coords` integers in [0, max].
func NewL1Extractor(coords, max, thetaMax, tauMax int) *L1Extractor {
	return &L1Extractor{Coords: coords, Max: max, MaxTau: tauMax, MaxTheta: thetaMax}
}

// Dim returns coords·max bits.
func (e *L1Extractor) Dim() int { return e.Coords * e.Max }

// TauMax returns the transformed-threshold ceiling.
func (e *L1Extractor) TauMax() int { return e.MaxTau }

// ThetaMax returns the largest supported L1 threshold.
func (e *L1Extractor) ThetaMax() float64 { return float64(e.MaxTheta) }

// Encode thermometer-codes every coordinate (values clamp to [0, Max]).
func (e *L1Extractor) Encode(x []int) []float64 {
	out := make([]float64, e.Dim())
	for c := 0; c < e.Coords && c < len(x); c++ {
		v := x[c]
		if v < 0 {
			v = 0
		}
		if v > e.Max {
			v = e.Max
		}
		base := c * e.Max
		for j := 0; j < v; j++ {
			out[base+j] = 1
		}
	}
	return out
}

// Threshold matches the Hamming transformation (the conversion is lossless).
func (e *L1Extractor) Threshold(theta float64) int {
	return proportional(theta, float64(e.MaxTheta), e.MaxTau, true)
}
