package feature

import "cardnet/internal/dist"

// HammingExtractor handles binary-vector data under Hamming distance
// (Section 4.1): records are fed to the regression model unchanged, and the
// threshold is used directly when θmax ≤ τmax, otherwise mapped
// proportionally.
type HammingExtractor struct {
	D        int // record dimensionality
	MaxTau   int
	MaxTheta int
}

// NewHammingExtractor returns an extractor for d-bit vectors supporting
// thresholds up to thetaMax with at most tauMax+1 decoders.
func NewHammingExtractor(d, thetaMax, tauMax int) *HammingExtractor {
	return &HammingExtractor{D: d, MaxTau: tauMax, MaxTheta: thetaMax}
}

// Dim returns the record dimensionality.
func (h *HammingExtractor) Dim() int { return h.D }

// TauMax returns the transformed-threshold ceiling.
func (h *HammingExtractor) TauMax() int { return h.MaxTau }

// ThetaMax returns the largest supported Hamming threshold.
func (h *HammingExtractor) ThetaMax() float64 { return float64(h.MaxTheta) }

// Encode expands the bit vector to floats; the identity feature map.
func (h *HammingExtractor) Encode(r dist.BitVector) []float64 { return r.Floats() }

// Threshold maps θ to τ (identity when θmax ≤ τmax).
func (h *HammingExtractor) Threshold(theta float64) int {
	return proportional(theta, float64(h.MaxTheta), h.MaxTau, true)
}
