package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cardnet/internal/dist"
)

func hammingFloats(a, b []float64) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

func TestHammingExtractorIdentity(t *testing.T) {
	e := NewHammingExtractor(64, 20, 32)
	if e.Dim() != 64 || e.TauMax() != 32 || e.ThetaMax() != 20 {
		t.Fatalf("config: %+v", e)
	}
	v := dist.NewBitVector(64)
	v.SetBit(5, true)
	f := e.Encode(v)
	if f[5] != 1 || f[6] != 0 {
		t.Fatal("Encode must be the identity map")
	}
	// θmax ≤ τmax: identity threshold map.
	for theta := 0; theta <= 20; theta++ {
		if got := e.Threshold(float64(theta)); got != theta {
			t.Fatalf("Threshold(%d)=%d", theta, got)
		}
	}
}

func TestHammingExtractorProportionalWhenThetaMaxLarge(t *testing.T) {
	e := NewHammingExtractor(64, 512, 128)
	if got := e.Threshold(512); got != 128 {
		t.Fatalf("Threshold(max)=%d", got)
	}
	if got := e.Threshold(256); got != 64 {
		t.Fatalf("Threshold(mid)=%d", got)
	}
	if got := e.Threshold(0); got != 0 {
		t.Fatalf("Threshold(0)=%d", got)
	}
	// Clamps above θmax.
	if got := e.Threshold(9999); got != 128 {
		t.Fatalf("Threshold(overflow)=%d", got)
	}
}

func TestEditExtractorPaperExample(t *testing.T) {
	// Paper Section 4.2: x="abc", Σ={a,b,c,d}, lmax=4, τmax=1 →
	// 111000, 011100, 001110, 000000 (groups separated by comma).
	e := NewEditExtractor("abcd", 4, 4, 1)
	if e.Dim() != (4+2)*4 {
		t.Fatalf("Dim=%d", e.Dim())
	}
	f := e.Encode("abc")
	want := "111000011100001110000000"
	for i := 0; i < len(want); i++ {
		got := f[i]
		if (want[i] == '1') != (got == 1) {
			t.Fatalf("bit %d: got %v want %c (full=%v)", i, got, want[i], f)
		}
	}
}

func TestEditExtractorBoundProperty(t *testing.T) {
	// f(x,y) edit operations yield Hamming distance ≤ f(x,y)·(4τmax+2).
	e := NewEditExtractor("ab", 12, 6, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() string {
			n := r.Intn(10)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte('a' + r.Intn(2))
			}
			return string(b)
		}
		x, y := mk(), mk()
		ed := dist.Edit(x, y)
		hd := hammingFloats(e.Encode(x), e.Encode(y))
		return hd <= ed*(4*e.MaxTau+2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEditExtractorHandlesUnknownAndLongStrings(t *testing.T) {
	e := NewEditExtractor("ab", 3, 3, 1)
	// Unknown chars are skipped, long strings truncated; must not panic and
	// must stay within dimension.
	f := e.Encode("azbzabababab")
	if len(f) != e.Dim() {
		t.Fatalf("len=%d want %d", len(f), e.Dim())
	}
}

func TestJaccardExtractorOneHotStructure(t *testing.T) {
	e := NewJaccardExtractor(8, 2, 0.4, 16, 7)
	if e.Dim() != 4*8 {
		t.Fatalf("Dim=%d", e.Dim())
	}
	s := dist.NewIntSet([]uint32{1, 5, 9})
	f := e.Encode(s)
	// Exactly one bit per 2^b block.
	for blk := 0; blk < e.K; blk++ {
		ones := 0
		for j := 0; j < 4; j++ {
			if f[blk*4+j] == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("block %d has %d ones", blk, ones)
		}
	}
	// Deterministic.
	g := e.Encode(s)
	for i := range f {
		if f[i] != g[i] {
			t.Fatal("Encode must be deterministic")
		}
	}
}

func TestJaccardCollisionRateApproximatesSimilarity(t *testing.T) {
	// With many permutations, the fraction of agreeing bmin values must be
	// close to the Jaccard similarity (b-bit minhash adds a small bias of
	// about (1−J)/2^b for b=2, so allow slack).
	e := NewJaccardExtractor(512, 2, 0.4, 16, 11)
	a := dist.NewIntSet([]uint32{0, 1, 2, 3, 4, 5, 6, 7})
	b := dist.NewIntSet([]uint32{0, 1, 2, 3, 4, 5, 10, 11})
	sim := 1 - dist.Jaccard(a, b) // 6/10
	agree := 0
	for i := 0; i < e.K; i++ {
		if e.BMin(i, a) == e.BMin(i, b) {
			agree++
		}
	}
	rate := float64(agree) / float64(e.K)
	expected := sim + (1-sim)/4 // collision by chance on 2 bits
	if math.Abs(rate-expected) > 0.08 {
		t.Fatalf("agreement rate %.3f, expected ≈ %.3f", rate, expected)
	}
}

func TestJaccardThresholdMonotone(t *testing.T) {
	e := NewJaccardExtractor(8, 2, 0.4, 16, 3)
	prev := -1
	for theta := 0.0; theta <= 0.4+1e-9; theta += 0.01 {
		tau := e.Threshold(theta)
		if tau < prev {
			t.Fatalf("threshold not monotone at %v: %d < %d", theta, tau, prev)
		}
		prev = tau
	}
	if e.Threshold(0) != 0 {
		t.Fatal("Threshold(0) must be 0")
	}
	if e.Threshold(0.4) != 16 {
		t.Fatalf("Threshold(max)=%d want 16", e.Threshold(0.4))
	}
}

func TestEuclideanExtractorStructure(t *testing.T) {
	e := NewEuclideanExtractor(16, 8, 7, 1.0, 0.8, 24, 5)
	if e.Dim() != 16*8 {
		t.Fatalf("Dim=%d", e.Dim())
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	f := e.Encode(x)
	for blk := 0; blk < e.K; blk++ {
		ones := 0
		for j := 0; j <= e.V; j++ {
			if f[blk*(e.V+1)+j] == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("block %d has %d ones", blk, ones)
		}
	}
}

func TestEuclideanCollisionProbProperties(t *testing.T) {
	e := NewEuclideanExtractor(4, 4, 7, 1.0, 0.8, 24, 5)
	if got := e.CollisionProb(0); got != 1 {
		t.Fatalf("ϵ(0)=%v", got)
	}
	prev := 1.0
	for theta := 0.01; theta <= 5; theta += 0.05 {
		p := e.CollisionProb(theta)
		if p < 0 || p > 1 {
			t.Fatalf("ϵ(%v)=%v out of range", theta, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("ϵ must decrease with θ: ϵ(%v)=%v > %v", theta, p, prev)
		}
		prev = p
	}
}

func TestEuclideanCollisionMatchesEmpirical(t *testing.T) {
	// Empirical hash-collision rate at distance θ should track ϵ(θ).
	rng := rand.New(rand.NewSource(9))
	e := NewEuclideanExtractor(2000, 16, 63, 1.0, 2.0, 24, 13)
	theta := 0.8
	x := make([]float64, 16)
	y := make([]float64, 16)
	dir := make([]float64, 16)
	for i := range dir {
		dir[i] = rng.NormFloat64()
	}
	dist.Normalize(dir)
	for i := range y {
		y[i] = x[i] + theta*dir[i]
	}
	agree := 0
	for i := 0; i < e.K; i++ {
		if e.HashValue(i, x) == e.HashValue(i, y) {
			agree++
		}
	}
	rate := float64(agree) / float64(e.K)
	want := e.CollisionProb(theta)
	if math.Abs(rate-want) > 0.05 {
		t.Fatalf("empirical collision %.3f vs ϵ(θ)=%.3f", rate, want)
	}
}

func TestEuclideanThresholdMonotoneAndBounded(t *testing.T) {
	e := NewEuclideanExtractor(16, 8, 7, 1.0, 0.8, 24, 5)
	prev := -1
	for theta := 0.0; theta <= 0.8+1e-9; theta += 0.02 {
		tau := e.Threshold(theta)
		if tau < prev || tau > e.TauMax() {
			t.Fatalf("bad τ at θ=%v: %d (prev %d)", theta, tau, prev)
		}
		prev = tau
	}
	if e.Threshold(0) != 0 {
		t.Fatal("Threshold(0) must be 0")
	}
	if e.Threshold(99) != e.Threshold(0.8) {
		t.Fatal("thresholds above θmax must clamp")
	}
}

func TestEffectiveTauTop(t *testing.T) {
	// Integer distance with θmax < τmax: only θmax+1 decoders useful.
	h := NewHammingExtractor(64, 20, 32)
	if got := EffectiveTauTop[dist.BitVector](h); got != 20 {
		t.Fatalf("EffectiveTauTop=%d", got)
	}
	j := NewJaccardExtractor(8, 2, 0.4, 16, 3)
	if got := EffectiveTauTop[dist.IntSet](j); got != 16 {
		t.Fatalf("EffectiveTauTop=%d", got)
	}
}

func TestExtractorInterfaceAccessors(t *testing.T) {
	// Exercise the small accessors through the generic interface so every
	// extractor stays a valid feature.Extractor.
	ed := NewEditExtractor("ab", 6, 4, 4)
	var e1 Extractor[string] = ed
	if e1.TauMax() != 4 || e1.ThetaMax() != 4 || e1.Threshold(2) != 2 {
		t.Fatal("edit accessors wrong")
	}
	jc := NewJaccardExtractor(4, 2, 0.4, 8, 1)
	var e2 Extractor[dist.IntSet] = jc
	if e2.TauMax() != 8 || e2.ThetaMax() != 0.4 {
		t.Fatal("jaccard accessors wrong")
	}
	eu := NewEuclideanExtractor(4, 4, 7, 1.0, 0.8, 8, 1)
	var e3 Extractor[[]float64] = eu
	if e3.ThetaMax() != 0.8 {
		t.Fatal("euclidean accessors wrong")
	}
}

func TestEuclideanHashValueClamps(t *testing.T) {
	e := NewEuclideanExtractor(2, 2, 3, 0.01, 0.8, 8, 2) // tiny r → extreme hashes
	big := []float64{1e6, 1e6}
	small := []float64{-1e6, -1e6}
	for i := 0; i < e.K; i++ {
		if h := e.HashValue(i, big); h < 0 || h > e.V {
			t.Fatalf("unclamped hash %d", h)
		}
		if h := e.HashValue(i, small); h < 0 || h > e.V {
			t.Fatalf("unclamped hash %d", h)
		}
	}
}

func TestEmptySetAndJaccardBMin(t *testing.T) {
	e := NewJaccardExtractor(4, 2, 0.4, 8, 3)
	if got := e.BMin(0, dist.NewIntSet(nil)); got != 0 {
		t.Fatalf("empty-set BMin=%d", got)
	}
	f := e.Encode(dist.NewIntSet(nil))
	ones := 0
	for _, v := range f {
		if v == 1 {
			ones++
		}
	}
	if ones != e.K {
		t.Fatal("empty set must still encode one bit per block")
	}
}

func TestProportionalNegativeTheta(t *testing.T) {
	h := NewHammingExtractor(16, 8, 8)
	if h.Threshold(-3) != 0 {
		t.Fatal("negative θ must map to 0")
	}
}

// The equivalency property of Section 4: thermometer-coded L1 distance maps
// EXACTLY to Hamming distance — no approximation.
func TestL1ExtractorExactEquivalence(t *testing.T) {
	e := NewL1Extractor(4, 10, 12, 12)
	if e.Dim() != 40 {
		t.Fatalf("Dim=%d", e.Dim())
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() []int {
			v := make([]int, 4)
			for i := range v {
				v[i] = r.Intn(11)
			}
			return v
		}
		x, y := mk(), mk()
		l1 := 0
		for i := range x {
			d := x[i] - y[i]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		return hammingFloats(e.Encode(x), e.Encode(y)) == l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestL1ExtractorClampsValues(t *testing.T) {
	e := NewL1Extractor(2, 5, 8, 8)
	f := e.Encode([]int{-3, 99})
	ones := 0
	for _, v := range f {
		if v == 1 {
			ones++
		}
	}
	if ones != 5 { // first coord clamps to 0, second to 5
		t.Fatalf("ones=%d", ones)
	}
	// Short input vectors leave trailing coords at zero.
	g := e.Encode([]int{2})
	if g[0] != 1 || g[1] != 1 || g[2] != 0 {
		t.Fatalf("short encode wrong: %v", g[:6])
	}
	if e.Threshold(4) != 4 || e.Threshold(99) != 8 {
		t.Fatal("threshold transform wrong")
	}
	if e.TauMax() != 8 || e.ThetaMax() != 8 {
		t.Fatal("accessors wrong")
	}
}
