package feature

import (
	"math"
	"math/rand"
)

// EuclideanExtractor handles real vectors under Euclidean distance via LSH
// based on the 2-stable (normal) distribution (Section 4.4):
// h_{a,b}(x) = ⌊(a·x + b)/r⌋ with a ~ N(0, I) and b ~ U[0, r). Hash values
// are clamped to [0, v] and one-hot encoded with v+1 bits per function. The
// collision probability of one hash is ϵ(θ), so the expected Hamming
// distance between encodings is (1 − ϵ(θ))·d, and the threshold transform is
// τ = ⌊τmax · (1−ϵ(θ)) / (1−ϵ(θmax))⌋.
type EuclideanExtractor struct {
	K        int     // number of hash functions
	R        float64 // quantization width
	V        int     // max clamped hash value; each block has V+1 bits
	InDim    int     // input vector dimensionality
	MaxTau   int
	MaxTheta float64

	a [][]float64
	b []float64
	// offset shifts raw hash values to be ≥ 0 before clamping at V.
	offset int
}

// NewEuclideanExtractor draws k hash functions for inDim-dimensional
// vectors. v+1 is the one-hot width per hash; raw values are shifted by
// (v+1)/2 so the typical range of ⌊(a·x+b)/r⌋ (centered near zero for
// zero-mean data) lands inside [0, v].
func NewEuclideanExtractor(k, inDim, v int, r, thetaMax float64, tauMax int, seed int64) *EuclideanExtractor {
	rng := rand.New(rand.NewSource(seed))
	e := &EuclideanExtractor{K: k, R: r, V: v, InDim: inDim, MaxTau: tauMax, MaxTheta: thetaMax,
		a: make([][]float64, k), b: make([]float64, k), offset: (v + 1) / 2}
	for i := 0; i < k; i++ {
		e.a[i] = make([]float64, inDim)
		for j := range e.a[i] {
			e.a[i][j] = rng.NormFloat64()
		}
		e.b[i] = rng.Float64() * r
	}
	return e
}

// Dim returns k·(v+1).
func (e *EuclideanExtractor) Dim() int { return e.K * (e.V + 1) }

// TauMax returns the transformed-threshold ceiling.
func (e *EuclideanExtractor) TauMax() int { return e.MaxTau }

// ThetaMax returns the largest supported Euclidean threshold.
func (e *EuclideanExtractor) ThetaMax() float64 { return e.MaxTheta }

// HashValue returns the clamped hash of x under function i.
func (e *EuclideanExtractor) HashValue(i int, x []float64) int {
	var dot float64
	for j, v := range x {
		dot += e.a[i][j] * v
	}
	h := int(math.Floor((dot+e.b[i])/e.R)) + e.offset
	if h < 0 {
		h = 0
	}
	if h > e.V {
		h = e.V
	}
	return h
}

// Encode produces the concatenation of k one-hot (v+1)-bit blocks.
func (e *EuclideanExtractor) Encode(x []float64) []float64 {
	out := make([]float64, e.Dim())
	block := e.V + 1
	for i := 0; i < e.K; i++ {
		out[i*block+e.HashValue(i, x)] = 1
	}
	return out
}

// CollisionProb returns ϵ(θ), the probability two points at distance θ share
// one hash value (Datar et al. 2004):
// ϵ(θ) = 1 − 2·Φ(−r/θ) − (2/(√(2π)·r/θ))·(1 − e^{−r²/(2θ²)}).
func (e *EuclideanExtractor) CollisionProb(theta float64) float64 {
	if theta <= 0 {
		return 1
	}
	c := e.R / theta
	p := 1 - 2*normCDF(-c) - 2/(math.Sqrt(2*math.Pi)*c)*(1-math.Exp(-c*c/2))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Threshold implements τ = ⌊τmax·(1−ϵ(θ))/(1−ϵ(θmax))⌋.
func (e *EuclideanExtractor) Threshold(theta float64) int {
	if theta <= 0 {
		return 0
	}
	if theta > e.MaxTheta {
		theta = e.MaxTheta
	}
	denom := 1 - e.CollisionProb(e.MaxTheta)
	if denom <= 0 {
		return 0
	}
	tau := int(float64(e.MaxTau) * (1 - e.CollisionProb(theta)) / denom)
	if tau > e.MaxTau {
		tau = e.MaxTau
	}
	return tau
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
