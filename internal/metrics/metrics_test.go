package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSEKnown(t *testing.T) {
	got := MSE([]float64{10, 20}, []float64{12, 16})
	if got != (4+16)/2.0 {
		t.Fatalf("MSE=%v", got)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestMAPEKnown(t *testing.T) {
	got := MAPE([]float64{100, 50}, []float64{90, 60})
	want := 100 * (0.1 + 0.2) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MAPE=%v want %v", got, want)
	}
	// Zero actual uses floor of 1.
	if got := MAPE([]float64{0}, []float64{2}); got != 200 {
		t.Fatalf("MAPE zero-floor=%v", got)
	}
}

func TestMeanQErrorKnownAndSymmetric(t *testing.T) {
	got := MeanQError([]float64{10}, []float64{20})
	if got != 2 {
		t.Fatalf("q-error=%v", got)
	}
	a := MeanQError([]float64{10}, []float64{20})
	b := MeanQError([]float64{20}, []float64{10})
	if a != b {
		t.Fatalf("q-error must be symmetric: %v vs %v", a, b)
	}
	// Perfect estimates give exactly 1.
	if got := MeanQError([]float64{7, 3}, []float64{7, 3}); got != 1 {
		t.Fatalf("perfect q-error=%v", got)
	}
	// Zeros floored.
	if got := MeanQError([]float64{0}, []float64{0}); got != 1 {
		t.Fatalf("zero q-error=%v", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestEvaluateAndString(t *testing.T) {
	r := Evaluate([]float64{10, 20}, []float64{10, 20})
	if r.MSE != 0 || r.MAPE != 0 || r.MeanQError != 1 || r.N != 2 {
		t.Fatalf("Evaluate=%+v", r)
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestGroupByKey(t *testing.T) {
	keys := []int{0, 0, 1}
	actual := []float64{10, 20, 5}
	est := []float64{10, 22, 10}
	groups := GroupByKey(keys, actual, est)
	if len(groups) != 2 {
		t.Fatalf("groups=%v", groups)
	}
	if groups[0].N != 2 || groups[1].N != 1 {
		t.Fatalf("group sizes wrong: %+v", groups)
	}
	if groups[1].MeanQError != 2 {
		t.Fatalf("group 1 q-error=%v", groups[1].MeanQError)
	}
}

func TestIsMonotonic(t *testing.T) {
	if !IsMonotonic([]float64{1, 1, 2, 3}) {
		t.Fatal("nondecreasing should pass")
	}
	if IsMonotonic([]float64{1, 3, 2}) {
		t.Fatal("decrease should fail")
	}
	if !IsMonotonic(nil) || !IsMonotonic([]float64{5}) {
		t.Fatal("degenerate sequences are monotonic")
	}
	// Tiny numerical jitter is tolerated.
	if !IsMonotonic([]float64{1, 1 - 1e-12}) {
		t.Fatal("tolerance not applied")
	}
}

func TestImprovementRatio(t *testing.T) {
	if got := ImprovementRatio(100, 50); got != 0.5 {
		t.Fatalf("γ=%v", got)
	}
	if got := ImprovementRatio(0, 10); got != 0 {
		t.Fatalf("γ with zero denominator=%v", got)
	}
}

// Property: q-error ≥ 1 and MAPE ≥ 0 for any inputs.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := make([]float64, n)
		e := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(1000))
			e[i] = float64(r.Intn(1000))
		}
		return MeanQError(a, e) >= 1 && MAPE(a, e) >= 0 && MSE(a, e) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
