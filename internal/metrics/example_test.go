package metrics_test

import (
	"fmt"

	"cardnet/internal/metrics"
)

func ExampleEvaluate() {
	actual := []float64{100, 10, 1}
	estimated := []float64{110, 8, 2}
	r := metrics.Evaluate(actual, estimated)
	fmt.Printf("MAPE=%.1f%% q=%.2f\n", r.MAPE, r.MeanQError)
	// Output: MAPE=43.3% q=1.45
}

func ExampleIsMonotonic() {
	fmt.Println(metrics.IsMonotonic([]float64{1, 2, 2, 5}))
	fmt.Println(metrics.IsMonotonic([]float64{1, 3, 2}))
	// Output:
	// true
	// false
}
