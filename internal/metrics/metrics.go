// Package metrics implements the evaluation metrics used throughout the
// paper's experiment section: MSE, MAPE, mean q-error, per-threshold
// breakdowns, and a monotonicity checker.
package metrics

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between estimates and actuals
// (paper Section 2.1).
func MSE(actual, estimated []float64) float64 {
	checkLens(actual, estimated)
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, c := range actual {
		d := c - estimated[i]
		s += d * d
	}
	return s / float64(len(actual))
}

// MAPE returns the mean absolute percentage error in percent
// (paper Section 2.1). Zero actual cardinalities contribute using a floor of
// one result, matching the usual convention for count data.
func MAPE(actual, estimated []float64) float64 {
	checkLens(actual, estimated)
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, c := range actual {
		denom := c
		if denom < 1 {
			denom = 1
		}
		s += math.Abs(c-estimated[i]) / denom
	}
	return 100 * s / float64(len(actual))
}

// MeanQError returns the mean q-error, the symmetric version of MAPE used in
// paper Table 5: mean over queries of max(c/ĉ, ĉ/c). Counts are floored at
// one so zero cardinalities and zero estimates stay finite.
func MeanQError(actual, estimated []float64) float64 {
	checkLens(actual, estimated)
	if len(actual) == 0 {
		return 0
	}
	var s float64
	for i, c := range actual {
		s += QError(c, estimated[i])
	}
	return s / float64(len(actual))
}

// QError returns the q-error of a single (actual, estimate) pair:
// max(c/ĉ, ĉ/c) with both counts floored at one, so zero cardinalities and
// zero estimates stay finite. Always ≥ 1; the serving-layer drift monitor
// accumulates these online.
func QError(actual, estimated float64) float64 {
	if actual < 1 {
		actual = 1
	}
	if estimated < 1 {
		estimated = 1
	}
	return math.Max(actual/estimated, estimated/actual)
}

// Report bundles the three headline accuracy metrics.
type Report struct {
	MSE, MAPE, MeanQError float64
	N                     int
}

// Evaluate computes all three metrics at once.
func Evaluate(actual, estimated []float64) Report {
	return Report{
		MSE:        MSE(actual, estimated),
		MAPE:       MAPE(actual, estimated),
		MeanQError: MeanQError(actual, estimated),
		N:          len(actual),
	}
}

// String renders the report as one line.
func (r Report) String() string {
	return fmt.Sprintf("MSE=%.2f MAPE=%.2f%% q-error=%.3f (n=%d)", r.MSE, r.MAPE, r.MeanQError, r.N)
}

// GroupByKey splits (actual, estimated) pairs by an integer key (e.g. the
// query threshold for Figure 5, or a cardinality bucket for Figure 9) and
// evaluates each group.
func GroupByKey(keys []int, actual, estimated []float64) map[int]Report {
	checkLens(actual, estimated)
	if len(keys) != len(actual) {
		panic("metrics: key length mismatch")
	}
	groupA := map[int][]float64{}
	groupE := map[int][]float64{}
	for i, k := range keys {
		groupA[k] = append(groupA[k], actual[i])
		groupE[k] = append(groupE[k], estimated[i])
	}
	out := make(map[int]Report, len(groupA))
	for k := range groupA {
		out[k] = Evaluate(groupA[k], groupE[k])
	}
	return out
}

// IsMonotonic reports whether the estimate sequence (ordered by increasing
// threshold for one fixed query) never decreases, within a small numerical
// tolerance. This is the property CardNet guarantees by construction.
func IsMonotonic(estimates []float64) bool {
	const tol = 1e-9
	for i := 1; i < len(estimates); i++ {
		if estimates[i] < estimates[i-1]-tol {
			return false
		}
	}
	return true
}

// ImprovementRatio returns the γ metric of paper Table 7:
// (ξ(replaced) − ξ(full)) / ξ(replaced), i.e. the relative improvement the
// full model achieves over a variant with one component replaced.
func ImprovementRatio(replaced, full float64) float64 {
	if replaced == 0 {
		return 0
	}
	return (replaced - full) / replaced
}

func checkLens(actual, estimated []float64) {
	if len(actual) != len(estimated) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(actual), len(estimated)))
	}
}
