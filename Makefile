# Tier-1 gate: `make ci` must stay green on every PR.

GO ?= go

.PHONY: ci lint vet build test bench-obs

ci: lint vet build test

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Regenerate the instrumentation-overhead baseline (results/BENCH_obs.json).
bench-obs:
	$(GO) run ./cmd/cardnet -mode obsbench -dataset HM-ImageNet -n 1200 \
		-calls 4000 -benchout results/BENCH_obs.json
