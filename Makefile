# Tier-1 gate: `make ci` must stay green on every PR.

GO ?= go

# Build identity stamped into the binary (cardnet_build_info metric and
# /healthz). Override VERSION on release builds: `make build VERSION=v1.2`.
VERSION ?= dev
GITSHA ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
LDFLAGS = -X main.buildVersion=$(VERSION) -X main.buildSHA=$(GITSHA)

.PHONY: ci lint staticcheck vet build test docs-lint race-serving race-obs race-train race-cluster race-infer race-autopilot bench-obs bench-serving bench-train bench-kernels bench-autopilot

ci: lint staticcheck vet build test docs-lint race-serving race-obs race-train race-cluster race-infer race-autopilot

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Optional deep lint: runs only where the staticcheck binary is already
# installed; CI containers without it skip the step rather than fail.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

vet:
	$(GO) vet ./...

# Documentation contracts: exported identifiers in the ops-facing packages
# carry doc comments, and docs/RUNBOOK.md's flag reference matches the flags
# cmd/cardnet actually defines (both directions). See cmd/docslint.
docs-lint:
	$(GO) run ./cmd/docslint

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

test:
	$(GO) test -race ./...

# Stress the serving engine's concurrency surface under the race detector
# beyond the plain `test` pass: repeated runs shuffle goroutine schedules.
race-serving:
	$(GO) test -race -count=3 ./internal/serving ./internal/core -run 'Concurrent|Swap|Saturation|Batcher|Cache'

# Shake the observability layer under the race detector: sink/registry
# concurrency, trace sampling, the rolling drift monitor, the SLO tracker's
# evaluation loop, triggered profile capture, and metrics federation.
race-obs:
	$(GO) test -race -count=3 ./internal/obs/... -run 'Concurrent|Sink|Trace|Monitor|Drift|Sampler|Tracker|Burn|Capture|Cooldown|Busy|Federate'

# Stress the data-parallel training engine and the shared tensor worker pool
# under the race detector: shard forward/backward over shared weights, ordered
# gradient reduction, and the help-first pool's nested dispatch.
race-train:
	$(GO) test -race -count=3 ./internal/core -run 'Workers|ParallelCloseToSequential|Sharded'
	$(GO) test -race -count=3 ./internal/tensor -run 'Parallel|RunParts|SetWorkers'

# Stress the cluster router under the race detector: ring membership churn,
# concurrent failover with a mid-traffic replica kill, the health prober's
# loop, and the rollout controller — plus the cmd-level router E2E (real
# replicas, real model files, canary promote and forced rollback).
race-cluster:
	$(GO) test -race -count=3 ./internal/cluster
	$(GO) test -race -count=2 ./cmd/cardnet -run 'RouterE2E|RunRouter'

# Stress the compiled inference path under the race detector: one plan shared
# by concurrent estimators (the scratch pool), engine precision tiers, and
# plan re-lowering racing hot swaps.
race-infer:
	$(GO) test -race -count=3 ./internal/infer -run 'Concurrent|Plan|Gate'
	$(GO) test -race -count=3 ./internal/serving -run 'Precision|GateFallback|SwapRelowers'

# Stress the autopilot's closed loop under the race detector: the full
# drift → retrain → shadow → swap cycle, mid-retrain kill and resume, the
# forced-regression reject, and the serve-layer E2E over live HTTP.
race-autopilot:
	$(GO) test -race -count=3 ./internal/autopilot
	$(GO) test -race -count=2 ./cmd/cardnet -run 'Autopilot|HealthzShape'

# Regenerate the instrumentation-overhead baseline (results/BENCH_obs.json).
bench-obs:
	$(GO) run ./cmd/cardnet -mode obsbench -dataset HM-ImageNet -n 1200 \
		-calls 4000 -benchout results/BENCH_obs.json

# Regenerate the serving-throughput baseline (results/BENCH_serving.json):
# batched vs per-request forward passes, the estimate cache, admission
# control under overload, and the router scaling/failover experiments.
bench-serving:
	$(GO) run ./cmd/cardnet -mode servebench -dataset HM-ImageNet -n 1200 \
		-calls 4000 -cluster -benchout results/BENCH_serving.json

# Regenerate the training-scalability baseline (results/BENCH_train.json):
# full training runs at workers 1/2/4/NumCPU plus parallel-kernel GFLOP/s.
bench-train:
	$(GO) run ./cmd/cardnet -mode trainbench -dataset HM-ImageNet -n 1200 \
		-benchepochs 8 -benchout results/BENCH_train.json

# Regenerate the closed-loop baseline (results/BENCH_autopilot.json): trigger
# latency over the dwell window, shadow-tap overhead on the all-τ estimate
# path, and client-visible downtime across the hot swap (must be 0 errors).
bench-autopilot:
	$(GO) run ./cmd/cardnet -mode autopilotbench -dataset HM-ImageNet -n 1200 \
		-calls 1500 -benchout results/BENCH_autopilot.json

# Kernel-level GFLOP/s table for the inference fast path: the f64/f32/int8
# ABT kernels, int8 activation quantization, and the zero-skip-vs-branch-free
# dense matmul comparison, all at the trainbench harness shape.
bench-kernels:
	$(GO) test ./internal/tensor -run '^$$' -bench 'KernelABT|KernelInt8|ZeroSkip' -benchmem
