# Tier-1 gate: `make ci` must stay green on every PR.

GO ?= go

.PHONY: ci lint vet build test race-serving bench-obs bench-serving

ci: lint vet build test race-serving

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Stress the serving engine's concurrency surface under the race detector
# beyond the plain `test` pass: repeated runs shuffle goroutine schedules.
race-serving:
	$(GO) test -race -count=3 ./internal/serving ./internal/core -run 'Concurrent|Swap|Saturation|Batcher|Cache'

# Regenerate the instrumentation-overhead baseline (results/BENCH_obs.json).
bench-obs:
	$(GO) run ./cmd/cardnet -mode obsbench -dataset HM-ImageNet -n 1200 \
		-calls 4000 -benchout results/BENCH_obs.json

# Regenerate the serving-throughput baseline (results/BENCH_serving.json):
# batched vs per-request forward passes and the estimate cache.
bench-serving:
	$(GO) run ./cmd/cardnet -mode servebench -dataset HM-ImageNet -n 1200 \
		-calls 4000 -benchout results/BENCH_serving.json
